// Package algo implements the "variety of algorithms" the paper's
// opening sentence motivates: graph algorithms expressed as associative
// array multiplication under task-specific ⊕.⊗ operator pairs, running
// on adjacency arrays produced by the incidence construction.
//
// Every algorithm here is a fixpoint (or bounded) iteration of
//
//	frontier' = frontier ⊕.⊗ A
//
// under a different algebra: or.and for reachability (BFS), min.+ for
// shortest paths (Bellman–Ford), max.min for widest paths, min with
// left-projection for label-propagation components, and +.× for
// triangle counting and PageRank — the GraphBLAS catalogue, built on
// the same Mul kernel as the paper's figures.
//
// Each algorithm exists in two forms:
//
//   - The package-level functions over *assoc.Array iterate the string
//     keyed, map-backed assoc.Mul directly. They are the readable
//     reference implementations and serve as the differential oracles.
//   - The methods on Graph run the same iterations on integer-id
//     sparse-vector kernels (sparse.SpMSpVPush / sparse.SpMVPull) over
//     the adjacency's CSR embedded in the square union vertex space,
//     switching push→pull automatically as the frontier densifies, with
//     a lazily built transpose for the pull direction and string↔id
//     translation only at the API boundary. Results are BIT-identical
//     to the reference forms — the kernels share their fold order
//     (ascending in-neighbor id per output, Definition I.3) and their
//     Zero-pruning — at one to two orders of magnitude less cost; see
//     BenchmarkAlgo* and cmd/graphbench -gen algo.
//
// Graphs built with FromSnapshot read a stream.View's maintained CSR
// directly, which is how cmd/adjserve answers /bfs, /sssp, /widest,
// /pagerank and /triangles from live snapshots during ingest.
package algo

import (
	"fmt"
	"math"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

// RowVector builds a 1×n associative array with the given row key and
// entries — the frontier/distance vectors of the iterative algorithms.
func RowVector[V any](rowKey string, entries map[string]V) *assoc.Array[V] {
	b := assoc.NewBuilder[V](nil)
	for col, v := range entries {
		b.Set(rowKey, col, v)
	}
	return b.Build()
}

// vectorEntries extracts the single-row array's entries as a map.
func vectorEntries[V any](vec *assoc.Array[V]) map[string]V {
	out := make(map[string]V, vec.NNZ())
	vec.Iterate(func(_, col string, v V) { out[col] = v })
	return out
}

// Pattern converts any array to its boolean support: true wherever an
// entry is stored. isZero, if non-nil, additionally drops algebraic
// zeros.
func Pattern[V any](a *assoc.Array[V], isZero func(V) bool) *assoc.Array[bool] {
	p := assoc.Convert(a, func(_, _ string, v V) bool {
		return isZero == nil || !isZero(v)
	})
	return p.Prune(func(b bool) bool { return !b })
}

// BFSLevels computes breadth-first levels from source over the pattern
// of adjacency array a, by frontier expansion under the or.and algebra:
// next = frontier ∨.∧ A. The result maps each reachable vertex to its
// hop count (source = 0). Vertices that are only row keys (pure sinks
// unreachable from source) are absent.
func BFSLevels[V any](a *assoc.Array[V], source string) (map[string]int, error) {
	if !a.RowKeys().Contains(source) && !a.ColKeys().Contains(source) {
		return nil, fmt.Errorf("algo: source %q is not a vertex of the array", source)
	}
	pattern := Pattern(a, nil)
	ops := semiring.BoolOrAnd()
	levels := map[string]int{source: 0}
	frontier := RowVector("f", map[string]bool{source: true})
	for depth := 1; frontier.NNZ() > 0; depth++ {
		next, err := assoc.Mul(frontier, pattern, ops, assoc.MulOptions{})
		if err != nil {
			return nil, err
		}
		fresh := map[string]bool{}
		next.Iterate(func(_, v string, reached bool) {
			if reached {
				if _, seen := levels[v]; !seen {
					levels[v] = depth
					fresh[v] = true
				}
			}
		})
		if len(fresh) == 0 {
			break
		}
		frontier = RowVector("f", fresh)
	}
	return levels, nil
}

// SSSP computes single-source shortest path distances over the min.+
// algebra by Bellman–Ford relaxation: dist' = dist ⊕ (dist min.+ A),
// iterated to fixpoint (at most |V| rounds). Edge weights are the
// adjacency values; they must be non-negative or at least free of
// negative cycles (a remaining change after |V| rounds reports one).
func SSSP(a *assoc.Array[float64], source string) (map[string]float64, error) {
	if !a.RowKeys().Contains(source) && !a.ColKeys().Contains(source) {
		return nil, fmt.Errorf("algo: source %q is not a vertex of the array", source)
	}
	ops := semiring.MinPlus()
	dist := RowVector("d", map[string]float64{source: 0})
	bound := a.RowKeys().Union(a.ColKeys()).Len()
	for round := 0; ; round++ {
		relaxed, err := assoc.Mul(dist, a, ops, assoc.MulOptions{})
		if err != nil {
			return nil, err
		}
		next, err := assoc.Add(dist, relaxed, ops) // ⊕ = min over union pattern
		if err != nil {
			return nil, err
		}
		if next.Equal(dist, value.Float64Equal) {
			return vectorEntries(dist), nil
		}
		if round >= bound {
			return nil, fmt.Errorf("algo: no fixpoint after %d rounds (negative cycle?)", bound)
		}
		dist = next
	}
}

// WidestPath computes the maximum bottleneck width from source to every
// reachable vertex under the max.min algebra: the largest over paths of
// the smallest edge weight on the path. The source itself has width
// +Inf (the algebra's ⊗-identity: an empty path constrains nothing).
func WidestPath(a *assoc.Array[float64], source string) (map[string]float64, error) {
	if !a.RowKeys().Contains(source) && !a.ColKeys().Contains(source) {
		return nil, fmt.Errorf("algo: source %q is not a vertex of the array", source)
	}
	ops := semiring.MaxMin()
	width := RowVector("w", map[string]float64{source: value.PosInf})
	bound := a.RowKeys().Union(a.ColKeys()).Len()
	for round := 0; ; round++ {
		relaxed, err := assoc.Mul(width, a, ops, assoc.MulOptions{})
		if err != nil {
			return nil, err
		}
		next, err := assoc.Add(width, relaxed, ops) // ⊕ = max over union pattern
		if err != nil {
			return nil, err
		}
		if next.Equal(width, value.Float64Equal) {
			return vectorEntries(width), nil
		}
		if round >= bound {
			return nil, fmt.Errorf("algo: widest-path failed to converge in %d rounds", bound)
		}
		width = next
	}
}

// minLeft is the min.select1st pair of the GraphBLAS catalogue: ⊕ = min
// (identity +Inf), ⊗ = left projection (l ⊗ e = l). The left projection
// has no two-sided identity and +Inf only annihilates from the left, so
// this is NOT a Theorem II.1 algebra — it is an algorithmic operator
// pair applied to an existing adjacency array, exactly the distinction
// the paper draws between construction and processing.
func minLeft() semiring.Ops[float64] {
	return semiring.Ops[float64]{
		Name: "min.select1st",
		Add:  math.Min,
		Mul:  func(l, _ float64) float64 { return l },
		Zero: value.PosInf, One: 0,
		Equal: value.Float64Equal,
	}
}

// Components assigns each vertex of the array's pattern a component
// label (the lexicographically smallest vertex key in its weakly
// connected component), via min-label propagation over the symmetrized
// pattern with the min.select1st pair.
func Components[V any](a *assoc.Array[V]) (map[string]string, error) {
	verts := a.RowKeys().Union(a.ColKeys())
	if verts.Len() == 0 {
		return map[string]string{}, nil
	}
	// Symmetrize the pattern with weight 1 edges both ways.
	b := assoc.NewBuilder[float64](nil)
	a.Iterate(func(r, c string, _ V) {
		b.Set(r, c, 1)
		b.Set(c, r, 1)
	})
	for i := 0; i < verts.Len(); i++ { // self-loops keep isolated keys alive
		b.Set(verts.Key(i), verts.Key(i), 1)
	}
	sym := b.Build()

	// Numeric labels = index in sorted vertex order, so the minimum
	// label corresponds to the lexicographically smallest key.
	labels := make(map[string]float64, verts.Len())
	for i := 0; i < verts.Len(); i++ {
		labels[verts.Key(i)] = float64(i)
	}
	vec := RowVector("l", labels)
	ops := minLeft()
	for round := 0; ; round++ {
		prop, err := assoc.Mul(vec, sym, ops, assoc.MulOptions{})
		if err != nil {
			return nil, err
		}
		next, err := assoc.Add(vec, prop, ops) // ⊕ = min
		if err != nil {
			return nil, err
		}
		if next.Equal(vec, value.Float64Equal) {
			break
		}
		if round > verts.Len() {
			return nil, fmt.Errorf("algo: component propagation failed to converge")
		}
		vec = next
	}
	out := make(map[string]string, verts.Len())
	vec.Iterate(func(_, v string, label float64) {
		out[v] = verts.Key(int(label))
	})
	return out, nil
}

// TriangleCount counts triangles in an undirected simple graph given as
// a symmetric adjacency pattern: tri = Σ (A ⊕.⊗ A) ∘ A under +.×,
// divided by 6 (each triangle is counted twice per vertex). Returns an
// error if the array is not symmetric.
func TriangleCount[V any](a *assoc.Array[V]) (int, error) {
	p := assoc.Convert(a, func(_, _ string, _ V) float64 { return 1 })
	pt := p.Transpose()
	if !assoc.SamePattern(p, pt) {
		return 0, fmt.Errorf("algo: triangle counting requires a symmetric adjacency array")
	}
	ops := semiring.PlusTimes()
	// Masked multiply computes (A·A) ∘ A directly, never materializing
	// the dense wedge matrix A² — the GraphBLAS triangle idiom.
	masked, err := assoc.MulMasked(p, p, p, ops)
	if err != nil {
		return 0, err
	}
	total, any := assoc.ReduceAll(masked, ops.Add)
	if !any {
		return 0, nil
	}
	if math.Mod(total, 6) != 0 {
		return 0, fmt.Errorf("algo: wedge count %v not divisible by 6 (self-loops present?)", total)
	}
	return int(total) / 6, nil
}

// TransitiveClosure computes the reachability pattern A⁺ (one or more
// hops) by repeated boolean squaring with union: B' = B ∨ (B ∨.∧ B),
// doubling path lengths each round, so it converges in O(log |V|)
// multiplies.
func TransitiveClosure[V any](a *assoc.Array[V]) (*assoc.Array[bool], error) {
	b := Pattern(a, nil)
	ops := semiring.BoolOrAnd()
	for round := 0; round < 64; round++ {
		sq, err := assoc.Mul(b, b, ops, assoc.MulOptions{})
		if err != nil {
			return nil, err
		}
		next, err := assoc.Add(b, sq, ops)
		if err != nil {
			return nil, err
		}
		if next.Equal(b, func(x, y bool) bool { return x == y }) {
			return b, nil
		}
		b = next
	}
	return nil, fmt.Errorf("algo: transitive closure failed to converge")
}

// OutDegrees returns each row key's ⊕-fold of its entries under +.× —
// the weighted out-degree (entry count when all weights are 1).
func OutDegrees[V any](a *assoc.Array[V]) map[string]float64 {
	ones := assoc.Convert(a, func(_, _ string, _ V) float64 { return 1 })
	return assoc.ReduceRows(ones, func(x, y float64) float64 { return x + y })
}

// InDegrees is OutDegrees of the transpose.
func InDegrees[V any](a *assoc.Array[V]) map[string]float64 {
	return OutDegrees(a.Transpose())
}

// PageRank computes the damped PageRank of the array's pattern with
// uniform teleport, iterating r' = damping·(r ⊕.⊗ P) + (1−damping)/n
// (+ dangling mass redistribution) until the L1 change drops below tol
// or maxIter rounds elapse. Returns the rank vector and the number of
// iterations used.
func PageRank[V any](a *assoc.Array[V], damping, tol float64, maxIter int) (map[string]float64, int, error) {
	if damping <= 0 || damping >= 1 {
		return nil, 0, fmt.Errorf("algo: damping must be in (0,1), got %v", damping)
	}
	verts := a.RowKeys().Union(a.ColKeys())
	n := verts.Len()
	if n == 0 {
		return map[string]float64{}, 0, nil
	}
	// Row-normalized transition array P over the union vertex space.
	outDeg := OutDegrees(a)
	b := assoc.NewBuilder[float64](nil)
	a.Iterate(func(r, c string, _ V) {
		b.Set(r, c, 1/outDeg[r])
	})
	p := b.Build()
	pFull, err := p.Reindex(verts, verts)
	if err != nil {
		return nil, 0, err
	}

	rank := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		rank[verts.Key(i)] = 1 / float64(n)
	}
	ops := semiring.PlusTimes()
	for iter := 1; iter <= maxIter; iter++ {
		vec, err := RowVector("r", rank).Reindex(RowVector("r", rank).RowKeys(), verts)
		if err != nil {
			return nil, 0, err
		}
		flowed, err := assoc.Mul(vec, pFull, ops, assoc.MulOptions{})
		if err != nil {
			return nil, 0, err
		}
		flow := vectorEntries(flowed)
		// Dangling vertices leak their rank; redistribute uniformly. The
		// sum runs in vertex-key order so the float fold is deterministic
		// (map iteration order would make reruns differ in final bits).
		dangling := 0.0
		for i := 0; i < n; i++ {
			v := verts.Key(i)
			if _, hasOut := outDeg[v]; !hasOut {
				dangling += rank[v]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		next := make(map[string]float64, n)
		delta := 0.0
		for i := 0; i < n; i++ {
			v := verts.Key(i)
			nv := base + damping*flow[v]
			delta += math.Abs(nv - rank[v])
			next[v] = nv
		}
		rank = next
		if delta < tol {
			return rank, iter, nil
		}
	}
	return rank, maxIter, nil
}
