package algo

import (
	"fmt"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/conformance"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

// The differential suite: every CSR-native kernel pinned against its
// assoc-based oracle over the conformance generators' adversarial
// instances — R-MAT skew, parallel edges, unicode/NUL/0xff keys, NaN
// and ±Inf weights. Results must be BIT-identical: the kernels share
// the oracles' fold order (ascending in-neighbor id per output) and
// pruning rules, so exact equality is the contract, not a tolerance.

const diffInstances = 60

func lookupEntry(t *testing.T, name string) semiring.Entry {
	t.Helper()
	entry, ok := semiring.Lookup(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	return entry
}

// instanceAdjacency builds the instance's adjacency array under the
// entry's operator pair — the construction the algorithms consume.
func instanceAdjacency(t *testing.T, inst conformance.Instance, ops semiring.Ops[float64]) *assoc.Array[float64] {
	t.Helper()
	eout, ein := inst.Incidence()
	adj, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		t.Fatalf("%s: correlate: %v", inst.Name, err)
	}
	return adj
}

// testSources picks a deterministic spread of source vertices.
func testSources(a *assoc.Array[float64]) []string {
	verts := a.RowKeys().Union(a.ColKeys())
	n := verts.Len()
	if n == 0 {
		return nil
	}
	picks := []int{0, n / 2, n - 1}
	var out []string
	seen := map[string]bool{}
	for _, i := range picks {
		k := verts.Key(i)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func sameFloatMap(a, b map[string]float64) string {
	if len(a) != len(b) {
		return fmt.Sprintf("size %d vs %d", len(a), len(b))
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			return fmt.Sprintf("key %q missing", k)
		}
		if !value.Float64Equal(av, bv) {
			return fmt.Sprintf("key %q: %v vs %v", k, av, bv)
		}
	}
	return ""
}

// sameErr requires both paths to agree on failure: either both succeed
// or both fail (divergence/convergence behavior is part of the oracle).
func sameErr(t *testing.T, ctx string, oracleErr, csrErr error) bool {
	t.Helper()
	if (oracleErr == nil) != (csrErr == nil) {
		t.Errorf("%s: oracle err=%v, csr err=%v", ctx, oracleErr, csrErr)
		return false
	}
	return oracleErr == nil
}

func TestCSRBFSMatchesOracle(t *testing.T) {
	gen := conformance.NewGenerator(101)
	entry := lookupEntry(t, "+.*")
	for i := 0; i < diffInstances; i++ {
		inst := gen.Instance(entry)
		if len(inst.Edges) == 0 {
			continue
		}
		adj := instanceAdjacency(t, inst, entry.Ops)
		g, err := FromArray(adj)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range testSources(adj) {
			want, werr := BFSLevels(adj, src)
			got, gerr := g.BFSLevels(src)
			ctx := fmt.Sprintf("%s[%d] bfs from %q", inst.Name, i, src)
			if !sameErr(t, ctx, werr, gerr) {
				continue
			}
			if len(want) != len(got) {
				t.Fatalf("%s: %d levels vs %d", ctx, len(got), len(want))
			}
			for k, wl := range want {
				if gl, ok := got[k]; !ok || gl != wl {
					t.Fatalf("%s: level[%q] = %d, want %d", ctx, k, gl, wl)
				}
			}
		}
	}
}

func TestCSRSSSPMatchesOracle(t *testing.T) {
	gen := conformance.NewGenerator(103)
	entry := lookupEntry(t, "min.+")
	for i := 0; i < diffInstances; i++ {
		inst := gen.Instance(entry)
		if len(inst.Edges) == 0 {
			continue
		}
		adj := instanceAdjacency(t, inst, entry.Ops)
		g, err := FromArray(adj)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range testSources(adj) {
			want, werr := SSSP(adj, src)
			got, gerr := g.SSSP(src)
			ctx := fmt.Sprintf("%s[%d] sssp from %q", inst.Name, i, src)
			if !sameErr(t, ctx, werr, gerr) {
				continue
			}
			if d := sameFloatMap(want, got); d != "" {
				t.Fatalf("%s: %s", ctx, d)
			}
		}
	}
}

func TestCSRWidestPathMatchesOracle(t *testing.T) {
	gen := conformance.NewGenerator(107)
	entry := lookupEntry(t, "max.min")
	for i := 0; i < diffInstances; i++ {
		inst := gen.Instance(entry)
		if len(inst.Edges) == 0 {
			continue
		}
		adj := instanceAdjacency(t, inst, entry.Ops)
		g, err := FromArray(adj)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range testSources(adj) {
			want, werr := WidestPath(adj, src)
			got, gerr := g.WidestPath(src)
			ctx := fmt.Sprintf("%s[%d] widest from %q", inst.Name, i, src)
			if !sameErr(t, ctx, werr, gerr) {
				continue
			}
			if d := sameFloatMap(want, got); d != "" {
				t.Fatalf("%s: %s", ctx, d)
			}
		}
	}
}

func TestCSRComponentsMatchesOracle(t *testing.T) {
	gen := conformance.NewGenerator(109)
	entry := lookupEntry(t, "+.*")
	for i := 0; i < diffInstances; i++ {
		inst := gen.Instance(entry)
		adj := instanceAdjacency(t, inst, entry.Ops)
		g, err := FromArray(adj)
		if err != nil {
			t.Fatal(err)
		}
		want, werr := Components(adj)
		got, gerr := g.Components()
		ctx := fmt.Sprintf("%s[%d] components", inst.Name, i)
		if !sameErr(t, ctx, werr, gerr) {
			continue
		}
		if len(want) != len(got) {
			t.Fatalf("%s: %d labels vs %d", ctx, len(got), len(want))
		}
		for k, wl := range want {
			if gl, ok := got[k]; !ok || gl != wl {
				t.Fatalf("%s: label[%q] = %q, want %q", ctx, k, gl, wl)
			}
		}
	}
}

func TestCSRTriangleCountMatchesOracle(t *testing.T) {
	gen := conformance.NewGenerator(113)
	entry := lookupEntry(t, "+.*")
	for i := 0; i < diffInstances; i++ {
		inst := gen.Instance(entry)
		if len(inst.Edges) == 0 {
			continue
		}
		adj := instanceAdjacency(t, inst, entry.Ops)
		// Symmetrize the pattern: triangle counting requires an undirected
		// adjacency, so both paths consume A ∨ Aᵀ with weight 1.
		p := assoc.Convert(adj, func(_, _ string, _ float64) float64 { return 1 })
		sym, err := assoc.Add(p, p.Transpose(), semiring.MaxMin())
		if err != nil {
			t.Fatal(err)
		}
		g, err := FromArray(sym)
		if err != nil {
			t.Fatal(err)
		}
		want, werr := TriangleCount(sym)
		got, gerr := g.TriangleCount()
		ctx := fmt.Sprintf("%s[%d] triangles", inst.Name, i)
		if !sameErr(t, ctx, werr, gerr) {
			continue
		}
		if want != got {
			t.Fatalf("%s: %d triangles, want %d", ctx, got, want)
		}
	}
}

func TestCSRPageRankMatchesOracle(t *testing.T) {
	gen := conformance.NewGenerator(127)
	entry := lookupEntry(t, "+.*")
	for i := 0; i < diffInstances; i++ {
		inst := gen.Instance(entry)
		adj := instanceAdjacency(t, inst, entry.Ops)
		g, err := FromArray(adj)
		if err != nil {
			t.Fatal(err)
		}
		want, wIters, werr := PageRank(adj, 0.85, 1e-12, 40)
		got, gIters, gerr := g.PageRank(0.85, 1e-12, 40)
		ctx := fmt.Sprintf("%s[%d] pagerank", inst.Name, i)
		if !sameErr(t, ctx, werr, gerr) {
			continue
		}
		if wIters != gIters {
			t.Fatalf("%s: %d iterations, want %d", ctx, gIters, wIters)
		}
		if d := sameFloatMap(want, got); d != "" {
			t.Fatalf("%s: %s", ctx, d)
		}
	}
}

// The asymmetric-input and unknown-source error paths behave like the
// oracles'.
func TestCSRGraphErrors(t *testing.T) {
	adj := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "a", Col: "b", Val: 1},
		{Row: "b", Col: "c", Val: 1},
	}, nil)
	g, err := FromArray(adj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.BFSLevels("zz"); err == nil {
		t.Error("unknown BFS source accepted")
	}
	if _, err := g.SSSP("zz"); err == nil {
		t.Error("unknown SSSP source accepted")
	}
	if _, err := g.TriangleCount(); err == nil {
		t.Error("asymmetric triangle count accepted")
	}
	if _, _, err := g.PageRank(1.5, 1e-9, 10); err == nil {
		t.Error("out-of-range damping accepted")
	}
}
