package algo

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"adjarray/internal/assoc"
	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/sparse"
	"adjarray/internal/stream"
	"adjarray/internal/value"
)

// Graph is the CSR-native execution form of an adjacency array: the
// array's sparse matrix embedded into the SQUARE union vertex space
// (rows ∪ cols), with vertices as integer ids and string keys resolved
// only at the API boundary. Every algorithm in this package has a
// method form on Graph running on the integer-id kernels; the package
// functions over *assoc.Array remain as the map-backed reference
// implementations (the differential oracles).
//
// A Graph is immutable and safe for concurrent use; the transpose
// needed by the pull kernels is built lazily, once, on first use.
type Graph struct {
	verts *keys.Set
	adj   *sparse.CSR[float64]

	trOnce sync.Once
	tr     *sparse.CSR[float64]

	prOnce sync.Once
	prNorm *sparse.CSR[float64] // PageRank's out-degree-normalized Aᵀ
}

// ErrNotVertex is wrapped by every source-taking algorithm when the
// requested source key is absent — callers (the adjserve endpoints)
// branch on it with errors.Is instead of matching message text.
var ErrNotVertex = errors.New("is not a vertex of the array")

// FromArray builds a Graph from an adjacency array, keeping the stored
// values as edge weights. Embedding into the union vertex space copies
// index structure but never values; when the array is already square
// over one key set, its matrix is used as-is.
func FromArray(a *assoc.Array[float64]) (*Graph, error) {
	verts := a.RowKeys().Union(a.ColKeys())
	sq, err := a.EmbedInto(verts, verts)
	if err != nil {
		return nil, fmt.Errorf("algo: embed into vertex space: %w", err)
	}
	return &Graph{verts: verts, adj: sq.Matrix()}, nil
}

// FromPattern builds a Graph from any array's pattern with weight 1 per
// stored entry — the form the structural algorithms (BFS, Components,
// TriangleCount, PageRank) consume.
func FromPattern[V any](a *assoc.Array[V]) (*Graph, error) {
	ones := assoc.Convert(a, func(_, _ string, _ V) float64 { return 1 })
	return FromArray(ones)
}

// FromSnapshot builds a Graph from a live stream snapshot's adjacency —
// the serving path: the snapshot is O(1) to take and immutable, so the
// Graph reads the maintained CSR directly while ingest continues.
func FromSnapshot(s stream.Snapshot[float64]) (*Graph, error) {
	return FromArray(s.Adjacency)
}

// Vertices returns the graph's ordered vertex key set.
func (g *Graph) Vertices() *keys.Set { return g.verts }

// NumEdges returns the number of stored adjacency entries.
func (g *Graph) NumEdges() int { return g.adj.NNZ() }

// transpose returns the cached Aᵀ, building it on first use (the pull
// kernels and PageRank gather along in-edges).
func (g *Graph) transpose() *sparse.CSR[float64] {
	g.trOnce.Do(func() { g.tr = g.adj.Transpose() })
	return g.tr
}

func (g *Graph) vertex(source string) (int, error) {
	id, ok := g.verts.IndexSorted(source)
	if !ok {
		return 0, fmt.Errorf("algo: source %q %w", source, ErrNotVertex)
	}
	return id, nil
}

// pullAlpha tunes the push→pull switch: a step runs pull once the edges
// leaving the frontier exceed nnz/pullAlpha, i.e. a push would touch a
// comparable share of the matrix anyway and one sequential transpose
// scan wins over scattered writes.
const pullAlpha = 8

// frontierEdges sums the out-degrees of the frontier rows.
func (g *Graph) frontierEdges(ids []int) int {
	e := 0
	for _, u := range ids {
		e += g.adj.RowNNZ(u)
	}
	return e
}

// BFSLevels is the CSR-native form of the package-level BFSLevels:
// breadth-first hop counts from source over the adjacency pattern,
// direction-optimizing — sparse frontiers push along out-edges, dense
// frontiers pull along in-edges with early exit per vertex.
func (g *Graph) BFSLevels(source string) (map[string]int, error) {
	src, err := g.vertex(source)
	if err != nil {
		return nil, err
	}
	n := g.verts.Len()
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int{src}
	var next []int
	for depth := 1; len(frontier) > 0; depth++ {
		next = next[:0]
		if g.frontierEdges(frontier)*pullAlpha > g.adj.NNZ() {
			// Pull: every undiscovered vertex scans its in-neighbors for a
			// member of the current frontier; first hit wins.
			t := g.transpose()
			for v := 0; v < n; v++ {
				if level[v] >= 0 {
					continue
				}
				cols, _ := t.Row(v)
				for _, u := range cols {
					if level[u] == depth-1 {
						level[v] = depth
						next = append(next, v)
						break
					}
				}
			}
		} else {
			for _, u := range frontier {
				cols, _ := g.adj.Row(u)
				for _, v := range cols {
					if level[v] < 0 {
						level[v] = depth
						next = append(next, v)
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	out := make(map[string]int)
	for i, l := range level {
		if l >= 0 {
			out[g.verts.Key(i)] = l
		}
	}
	return out, nil
}

// relaxToFixpoint runs the shared frontier-relaxation loop of the
// weighted algorithms: starting from a single seeded value, it iterates
// dist' = dist ⊕ (dist ⊕.⊗ A) to fixpoint, keeping the active set
// sparse. Contributions to an output fold in ascending in-neighbor
// order (the kernels' contract), folds equal to the algebra's Zero are
// pruned, and a merge leaves a stored value in place unless ⊕ moves it
// — exactly the semantics of the assoc reference loop, so converged
// results are bit-identical. Returns the dense value array and its
// presence mask, or an error after bound unconverged rounds.
func (g *Graph) relaxToFixpoint(src int, seed float64, ops semiring.Ops[float64], bound int, diverged string) ([]float64, []bool, error) {
	n := g.verts.Len()
	val := make([]float64, n)
	has := make([]bool, n)
	val[src], has[src] = seed, true

	frontier := []int{src}
	frontVals := []float64{seed}
	frontMask := make([]bool, n)
	acc := make([]float64, n)
	hit := make([]bool, n)
	var touched []int
	nnz := g.adj.NNZ()
	for round := 0; len(frontier) > 0; round++ {
		if round > bound {
			return nil, nil, fmt.Errorf("algo: %s", diverged)
		}
		touched = touched[:0]
		if g.frontierEdges(frontier)*pullAlpha > nnz {
			for _, u := range frontier {
				frontMask[u] = true
			}
			touched = sparse.SpMVPull(g.transpose(), val, frontMask, ops.Add, ops.Mul, acc, hit, touched)
			for _, u := range frontier {
				frontMask[u] = false
			}
		} else {
			touched = sparse.SpMSpVPush(g.adj, frontier, frontVals, ops.Add, ops.Mul, acc, hit, touched)
			// Push discovers outputs in scatter order; the next frontier
			// must be ascending to keep the following round's fold order.
			sortIDs(touched)
		}
		frontier = frontier[:0]
		frontVals = frontVals[:0]
		for _, v := range touched {
			f := acc[v]
			hit[v] = false
			if ops.IsZero(f) {
				continue // the engine's prune: a Zero fold is no entry
			}
			if !has[v] {
				has[v] = true
				val[v] = f
			} else {
				merged := ops.Add(val[v], f)
				if ops.Equal(merged, val[v]) {
					continue
				}
				val[v] = merged
				if ops.IsZero(merged) {
					// ⊕ produced the algebra's Zero: the sparse reference
					// prunes the entry (unreachable for the registry pairs,
					// whose ⊕ selects an operand).
					has[v] = false
					continue
				}
			}
			frontier = append(frontier, v)
			frontVals = append(frontVals, val[v])
		}
	}
	return val, has, nil
}

// sortIDs orders a touched-id list ascending: insertion sort while the
// list is small (no interface overhead on the hot relaxation path),
// sort.Ints once a dense round would make insertion sort quadratic.
func sortIDs(xs []int) {
	if len(xs) > 64 {
		sort.Ints(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// extract converts a dense result vector back to the string-keyed map.
func (g *Graph) extract(val []float64, has []bool) map[string]float64 {
	out := make(map[string]float64)
	for i, ok := range has {
		if ok {
			out[g.verts.Key(i)] = val[i]
		}
	}
	return out
}

// SSSP is the CSR-native single-source shortest-path distance map under
// min.+ — Bellman–Ford with a sparse active set instead of full-vector
// products.
func (g *Graph) SSSP(source string) (map[string]float64, error) {
	src, err := g.vertex(source)
	if err != nil {
		return nil, err
	}
	val, has, err := g.relaxToFixpoint(src, 0, semiring.MinPlus(), g.verts.Len(),
		fmt.Sprintf("no fixpoint after %d rounds (negative cycle?)", g.verts.Len()))
	if err != nil {
		return nil, err
	}
	return g.extract(val, has), nil
}

// WidestPath is the CSR-native maximum-bottleneck-width map under
// max.min; the source seeds at +Inf (an empty path constrains nothing).
func (g *Graph) WidestPath(source string) (map[string]float64, error) {
	src, err := g.vertex(source)
	if err != nil {
		return nil, err
	}
	val, has, err := g.relaxToFixpoint(src, value.PosInf, semiring.MaxMin(), g.verts.Len(),
		fmt.Sprintf("widest-path failed to converge in %d rounds", g.verts.Len()))
	if err != nil {
		return nil, err
	}
	return g.extract(val, has), nil
}

// Components is the CSR-native weakly-connected-components labeling:
// min-label propagation with a sparse changed set over the symmetrized
// pattern, under the same min.select1st operator pair as the reference.
func (g *Graph) Components() (map[string]string, error) {
	n := g.verts.Len()
	if n == 0 {
		return map[string]string{}, nil
	}
	// Symmetrized pattern S = pattern(A) ∪ pattern(Aᵀ), weight 1: the ⊗
	// of min.select1st projects the label through, so values are inert.
	patternOps := semiring.Ops[float64]{
		Name: "pattern∪",
		Add:  func(float64, float64) float64 { return 1 },
		Mul:  func(float64, float64) float64 { return 1 },
		Zero: 0, One: 1,
		Equal: func(a, b float64) bool { return a == b },
	}
	ones := onesLike(g.adj)
	sym, err := sparse.EWiseAdd(ones, ones.Transpose(), patternOps)
	if err != nil {
		return nil, err
	}

	ops := minLeft()
	label := make([]float64, n)
	frontier := make([]int, n)
	frontVals := make([]float64, n)
	for i := range label {
		label[i] = float64(i)
		frontier[i] = i
		frontVals[i] = label[i]
	}
	acc := make([]float64, n)
	hit := make([]bool, n)
	var touched []int
	for round := 0; len(frontier) > 0; round++ {
		if round > n {
			return nil, fmt.Errorf("algo: component propagation failed to converge")
		}
		touched = sparse.SpMSpVPush(sym, frontier, frontVals, ops.Add, ops.Mul, acc, hit, touched[:0])
		sortIDs(touched)
		frontier = frontier[:0]
		frontVals = frontVals[:0]
		for _, v := range touched {
			f := acc[v]
			hit[v] = false
			if f < label[v] {
				label[v] = f
				frontier = append(frontier, v)
				frontVals = append(frontVals, f)
			}
		}
	}
	out := make(map[string]string, n)
	for i := range label {
		out[g.verts.Key(i)] = g.verts.Key(int(label[i]))
	}
	return out, nil
}

// onesLike copies a matrix's pattern with every stored value 1.
func onesLike(m *sparse.CSR[float64]) *sparse.CSR[float64] {
	return m.Map(func(_, _ int, _ float64) float64 { return 1 })
}

// TriangleCount is the CSR-native triangle count: per stored edge (i,j)
// of the symmetric pattern, the wedge count |N(i) ∩ N(j)| by sorted
// intersection — the masked (A·A) ∘ A of the reference without
// materializing products — summed and divided by 6. Only index
// structure is read, so the symmetry check reuses the Graph's cached
// transpose and no value copies are made.
func (g *Graph) TriangleCount() (int, error) {
	if !sparse.SamePattern(g.adj, g.transpose()) {
		return 0, fmt.Errorf("algo: triangle counting requires a symmetric adjacency array")
	}
	var wedges int64
	n := g.verts.Len()
	for i := 0; i < n; i++ {
		ri, _ := g.adj.Row(i)
		for _, j := range ri {
			rj, _ := g.adj.Row(j)
			wedges += intersectCount(ri, rj)
		}
	}
	if wedges%6 != 0 {
		return 0, fmt.Errorf("algo: wedge count %v not divisible by 6 (self-loops present?)", wedges)
	}
	return int(wedges / 6), nil
}

// intersectCount counts common elements of two ascending id slices.
func intersectCount(a, b []int) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// PageRank is the CSR-native damped PageRank with uniform teleport and
// dangling-mass redistribution: one dense pull SpMV over the
// out-degree-normalized transpose per iteration, numerically identical
// to the reference (same ascending in-neighbor fold, same vertex-order
// reductions). Returns the rank map and iterations used.
func (g *Graph) PageRank(damping, tol float64, maxIter int) (map[string]float64, int, error) {
	if damping <= 0 || damping >= 1 {
		return nil, 0, fmt.Errorf("algo: damping must be in (0,1), got %v", damping)
	}
	n := g.verts.Len()
	if n == 0 {
		return map[string]float64{}, 0, nil
	}
	// Pᵀ with value 1/outdeg(u) at (v, u): the transpose's column ids ARE
	// the source vertices, so normalization is a value rewrite — built
	// once per Graph, so a burst of PageRank queries against one cached
	// snapshot epoch pays it once.
	g.prOnce.Do(func() {
		g.prNorm = g.transpose().Map(func(_, u int, _ float64) float64 {
			return 1 / float64(g.adj.RowNNZ(u))
		})
	})
	norm := g.prNorm

	rank := make([]float64, n)
	flow := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for iter := 1; iter <= maxIter; iter++ {
		for v := 0; v < n; v++ {
			f := 0.0
			cols, vals := norm.Row(v)
			for p, u := range cols {
				f += rank[u] * vals[p]
			}
			flow[v] = f
		}
		dangling := 0.0
		for i := 0; i < n; i++ {
			if g.adj.RowNNZ(i) == 0 {
				dangling += rank[i]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		delta := 0.0
		for i := 0; i < n; i++ {
			nv := base + damping*flow[i]
			delta += math.Abs(nv - rank[i])
			rank[i] = nv
		}
		if delta < tol {
			return g.rankMap(rank), iter, nil
		}
	}
	return g.rankMap(rank), maxIter, nil
}

func (g *Graph) rankMap(rank []float64) map[string]float64 {
	out := make(map[string]float64, len(rank))
	for i, r := range rank {
		out[g.verts.Key(i)] = r
	}
	return out
}
