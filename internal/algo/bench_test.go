package algo

import (
	"math/rand"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/semiring"
)

// benchAdjacency builds an rmat adjacency array once per benchmark
// process (scale 10 keeps the assoc arms affordable under -benchtime 1x
// in CI; graphbench -gen algo measures s12/s14).
func benchAdjacency(b *testing.B, scale int) (*assoc.Array[float64], *Graph, string) {
	b.Helper()
	g := dataset.RMAT(rand.New(rand.NewSource(1)), scale, 8)
	one := func(graph.Edge) float64 { return 1 }
	eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
	if err != nil {
		b.Fatal(err)
	}
	adj, err := assoc.Correlate(eout, ein, semiring.PlusTimes(), assoc.MulOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cg, err := FromArray(adj)
	if err != nil {
		b.Fatal(err)
	}
	// Deterministic high-degree source: the busiest row key.
	src := adj.RowKeys().Key(0)
	best := -1
	for i := 0; i < adj.RowKeys().Len(); i++ {
		if d := adj.Matrix().RowNNZ(i); d > best {
			best, src = d, adj.RowKeys().Key(i)
		}
	}
	return adj, cg, src
}

func BenchmarkAlgoBFS(b *testing.B) {
	adj, cg, src := benchAdjacency(b, 10)
	b.Run("assoc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := BFSLevels(adj, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cg.BFSLevels(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAlgoSSSP(b *testing.B) {
	adj, cg, src := benchAdjacency(b, 10)
	b.Run("assoc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SSSP(adj, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cg.SSSP(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAlgoPageRank(b *testing.B) {
	adj, cg, _ := benchAdjacency(b, 10)
	const damping, tol, iters = 0.85, 1e-10, 30
	b.Run("assoc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := PageRank(adj, damping, tol, iters); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := cg.PageRank(damping, tol, iters); err != nil {
				b.Fatal(err)
			}
		}
	})
}
