// Package kernelopts statically rejects assoc.MulOptions combinations
// that today only fail at runtime, deep inside a multiplication that
// may be hours into an ingest:
//
//   - Kernel other than ""/"twophase" combined with Workers > 1 or
//     Workers < 0 — the parallel path always runs the two-phase
//     engine, so the kernel request would be silently impossible
//     (assoc.Mul returns an error for exactly this);
//   - Kernel strings outside the known set {"", "twophase",
//     "gustavson", "hash", "merge"};
//   - a masked multiplication (assoc.MulMasked/MulMaskedOpt) with a
//     non-twophase kernel — the masked engine has no other variants.
//
// The check fires on assoc.MulOptions composite literals whose Kernel
// and Workers fields are compile-time constants: at the literal itself
// for the Kernel+Workers conflict and unknown kernels (an invalid
// combination is invalid wherever the literal flows — including nested
// inside stream.Options{Mul: …}), and at MulMaskedOpt call sites for
// the mask/kernel conflict.
package kernelopts

import (
	"go/ast"
	"go/constant"
	"go/types"

	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/lintutil"
)

const assocPath = "adjarray/internal/assoc"

var knownKernels = map[string]bool{"": true, "twophase": true, "gustavson": true, "hash": true, "merge": true}

// Analyzer is the kernelopts pass.
var Analyzer = &analysis.Analyzer{
	Name: "kernelopts",
	Doc:  "flag statically-invalid assoc.MulOptions combinations (Kernel+Workers conflict, unknown kernels, masked multiply with a non-twophase kernel)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range lintutil.NonTestFiles(pass.Fset, pass.Files) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				checkLiteral(pass, x)
			case *ast.CallExpr:
				checkMaskedCall(pass, x)
			}
			return true
		})
	}
	return nil, nil
}

// checkLiteral validates any assoc.MulOptions composite literal with
// constant Kernel/Workers fields.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	if !isMulOptions(pass.TypesInfo.TypeOf(lit)) || !keyed(lit) {
		return
	}
	kernel, kernelKnown := constStringField(pass, lit, "Kernel")
	workers, workersKnown := constIntField(pass, lit, "Workers")
	if kernelKnown && !knownKernels[kernel] {
		pass.Reportf(lit.Pos(),
			"unknown SpGEMM kernel %q in assoc.MulOptions (known: twophase, gustavson, hash, merge); assoc.Mul will reject this at runtime", kernel)
		return
	}
	if kernelKnown && workersKnown &&
		kernel != "" && kernel != "twophase" && (workers > 1 || workers < 0) {
		pass.Reportf(lit.Pos(),
			"assoc.MulOptions requests kernel %q together with Workers=%d: the parallel path always runs the two-phase engine, so assoc.Mul rejects this combination at runtime — drop the Kernel or set Workers to 0/1", kernel, workers)
	}
}

// checkMaskedCall validates assoc.MulMaskedOpt(_, _, _, _, opt) where
// opt is a composite literal (or an untouched local initialized from
// one) with a constant non-twophase Kernel.
func checkMaskedCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != assocPath || fn.Name() != "MulMaskedOpt" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.CompositeLit)
	if !ok || !isMulOptions(pass.TypesInfo.TypeOf(lit)) || !keyed(lit) {
		return
	}
	kernel, known := constStringField(pass, lit, "Kernel")
	if known && kernel != "" && kernel != "twophase" {
		pass.Reportf(call.Pos(),
			"assoc.MulMaskedOpt has no %q kernel (masked multiplication is two-phase only); this call fails at runtime", kernel)
	}
}

func isMulOptions(t types.Type) bool {
	if t == nil {
		return false
	}
	p, n := lintutil.NamedPath(t)
	return p == assocPath && n == "MulOptions"
}

// constStringField returns the constant string value of a named field
// in the literal; known is false when the field is absent or not a
// compile-time constant. An absent Kernel field is the known constant
// "" (the zero value) — same for Workers below — because an
// unmentioned field in a keyed composite literal IS its zero value.
func constStringField(pass *analysis.Pass, lit *ast.CompositeLit, name string) (string, bool) {
	v, present := fieldValue(lit, name)
	if !present {
		return "", true
	}
	tv, ok := pass.TypesInfo.Types[v]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func constIntField(pass *analysis.Pass, lit *ast.CompositeLit, name string) (int64, bool) {
	v, present := fieldValue(lit, name)
	if !present {
		return 0, true
	}
	tv, ok := pass.TypesInfo.Types[v]
	if !ok || tv.Value == nil {
		return 0, false
	}
	i, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return i, exact
}

// keyed reports whether every element of the literal is a key:value
// pair. Positional MulOptions literals (not used in this repo) are
// skipped entirely — "field absent" would be indistinguishable from
// "field set positionally".
func keyed(lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		if _, ok := el.(*ast.KeyValueExpr); !ok {
			return false
		}
	}
	return true
}

// fieldValue finds the value expression for a keyed field; present is
// false when the field is not mentioned (so it holds its zero value).
func fieldValue(lit *ast.CompositeLit, name string) (ast.Expr, bool) {
	for _, el := range lit.Elts {
		kv := el.(*ast.KeyValueExpr)
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return kv.Value, true
		}
	}
	return nil, false
}
