// Fixture for the kernelopts analyzer, type-checked against the real
// assoc package so the literals carry the genuine MulOptions type.
package kerneloptstest

import (
	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
)

// badKernel misspells a kernel name; assoc.Mul would reject it at
// runtime, possibly hours into an ingest.
var badKernel = assoc.MulOptions{Kernel: "gustavsen"} // want `unknown SpGEMM kernel "gustavsen"`

// conflict requests a serial-only kernel on the parallel path — the
// PR 2 Kernel/Workers conflict.
var conflict = assoc.MulOptions{Kernel: "hash", Workers: 8} // want `kernel "hash" together with Workers=8`

// maskedBad pairs a mask with a non-twophase kernel — the masked
// engine has no other variants.
func maskedBad(a, b *assoc.Array[float64], mask *assoc.Array[float64], ops semiring.Ops[float64]) {
	assoc.MulMaskedOpt(a, b, mask, ops, assoc.MulOptions{Kernel: "gustavson"}) // want `MulMaskedOpt has no "gustavson" kernel`
}

// The valid combinations stay silent.
var (
	okSerial   = assoc.MulOptions{Kernel: "merge"}
	okParallel = assoc.MulOptions{Kernel: "twophase", Workers: 4}
	okDefault  = assoc.MulOptions{Workers: 16, Grain: 64}
)

func maskedGood(a, b *assoc.Array[float64], mask *assoc.Array[float64], ops semiring.Ops[float64]) {
	assoc.MulMaskedOpt(a, b, mask, ops, assoc.MulOptions{Kernel: "twophase", Workers: 2})
}

// runtimeKernel is not a compile-time constant: the analyzer stays
// conservative and silent.
func runtimeKernel(name string) assoc.MulOptions {
	return assoc.MulOptions{Kernel: name, Workers: 8}
}
