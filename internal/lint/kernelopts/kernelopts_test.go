package kernelopts_test

import (
	"testing"

	"adjarray/internal/lint/kernelopts"
	"adjarray/internal/lint/linttest"
)

func TestKernelopts(t *testing.T) {
	linttest.Run(t, "testdata/kerneloptstest", kernelopts.Analyzer)
}
