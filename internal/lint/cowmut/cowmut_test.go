package cowmut_test

import (
	"testing"

	"adjarray/internal/lint/cowmut"
	"adjarray/internal/lint/linttest"
)

func TestCowmut(t *testing.T) {
	linttest.Run(t, "testdata/cowmuttest", cowmut.Analyzer)
}
