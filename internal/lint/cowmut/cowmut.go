// Package cowmut enforces copy-on-write discipline on slices that
// outlive their owner through snapshots: stream.View's id→position
// arrays and the CSR layers snapshots share. Those slices are REPLACED
// wholesale by their sanctioned rebuild/rebase helpers; mutating them
// element-wise (or growing them with append back into the same field)
// would be observed by every snapshot that captured the old header —
// the PR 5 aliasing bug class, and a violation of the O(1)-snapshot
// guarantee stream documents.
//
// Fields (or whole types) opt in with a directive comment:
//
//	//adjlint:cow
//
// on the field declaration (every slice field of a type-level
// annotation is covered). Within the same package — COW fields are
// unexported, so all writers are local — the analyzer then flags:
//
//	x.field[i] = v          // element write through the shared header
//	x.field[i] += v
//	x.field = append(x.field, …)  // may grow in place into shared backing
//
// Wholesale replacement (x.field = freshSlice) stays legal: that IS
// copy-on-write. Sanctioned writers — the rebuild helpers that
// construct the fresh slice and install it — are annotated
//
//	//adjlint:cow-writer
//
// on their doc comment and are skipped entirely.
package cowmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/lintutil"
)

// Directive marks a COW-disciplined field or type.
const Directive = "//adjlint:cow"

// WriterDirective marks a function sanctioned to mutate COW fields.
const WriterDirective = "//adjlint:cow-writer"

// Analyzer is the cowmut pass.
var Analyzer = &analysis.Analyzer{
	Name: "cowmut",
	Doc:  "flag in-place mutation of //adjlint:cow slices (snapshot-shared storage must be replaced, never written through)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	cow := collectCowFields(pass)
	if len(cow) == 0 {
		return nil, nil
	}
	for _, f := range lintutil.NonTestFiles(pass.Fset, pass.Files) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || lintutil.FuncHasDirective(fd, WriterDirective) {
				continue
			}
			checkFunc(pass, fd.Body, cow)
		}
	}
	return nil, nil
}

// collectCowFields resolves //adjlint:cow annotations to the field
// objects they cover: annotated fields directly, and every slice field
// of an annotated struct type.
func collectCowFields(pass *analysis.Pass) map[types.Object]bool {
	cow := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				return true
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				typeWide := lintutil.HasDirective(gd.Doc, Directive) || lintutil.HasDirective(ts.Doc, Directive) ||
					lintutil.HasDirective(ts.Comment, Directive)
				for _, field := range st.Fields.List {
					marked := typeWide || lintutil.HasDirective(field.Doc, Directive) ||
						lintutil.HasDirective(field.Comment, Directive)
					if !marked {
						continue
					}
					for _, name := range field.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj == nil {
							continue
						}
						if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
							cow[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return cow
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, cow map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				checkAssign(pass, stmt, i, lhs, cow)
			}
		case *ast.IncDecStmt:
			if sel, field := cowIndexTarget(pass, stmt.X, cow); sel != nil {
				pass.Reportf(stmt.Pos(),
					"in-place %s of COW field %s: snapshots share this backing array — build a fresh slice and replace the field (see the //adjlint:cow-writer helpers)",
					stmt.Tok, field.Name())
			}
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt, i int, lhs ast.Expr, cow map[types.Object]bool) {
	// x.field[i] = v, x.field[i] += v.
	if _, field := cowIndexTarget(pass, lhs, cow); field != nil {
		pass.Reportf(stmt.Pos(),
			"element write to COW field %s: snapshots share this backing array — build a fresh slice and replace the field (see the //adjlint:cow-writer helpers)",
			field.Name())
		return
	}
	// x.field = append(x.field, …): the append may extend in place
	// into backing a snapshot still reads.
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	field := lintutil.Obj(pass.TypesInfo, sel.Sel)
	if field == nil || !cow[field] {
		return
	}
	if i >= len(stmt.Rhs) {
		return
	}
	call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return
	}
	firstSel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	if ok && lintutil.Obj(pass.TypesInfo, firstSel.Sel) == field {
		pass.Reportf(stmt.Pos(),
			"append back into COW field %s may grow in place into snapshot-shared backing; copy into a fresh slice and replace the field instead",
			field.Name())
	}
}

// cowIndexTarget matches x.field[i] (any depth of parens/slices) where
// field is COW-annotated, returning the selector and field object.
func cowIndexTarget(pass *analysis.Pass, e ast.Expr, cow map[types.Object]bool) (*ast.SelectorExpr, types.Object) {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	field := lintutil.Obj(pass.TypesInfo, sel.Sel)
	if field == nil || !cow[field] {
		return nil, nil
	}
	return sel, field
}
