// Fixture for the cowmut analyzer: in-place mutation of slices that
// snapshots share, against the sanctioned replace-wholesale discipline
// of stream.View's id→position arrays.
package cowmuttest

type view struct {
	//adjlint:cow
	pos     []int32
	scratch []int32
}

// mutateBad writes through the shared header — every snapshot that
// captured pos sees the change.
func (v *view) mutateBad(i int, p int32) {
	v.pos[i] = p // want `element write to COW field pos`
}

// growBad may extend in place into shared backing.
func (v *view) growBad(p int32) {
	v.pos = append(v.pos, p) // want `append back into COW field pos`
}

// bumpBad increments through the shared header.
func (v *view) bumpBad(i int) {
	v.pos[i]++ // want `in-place \+\+ of COW field pos`
}

// rebase is the sanctioned copy-on-write replacement from
// internal/stream: build fresh, install wholesale. No finding.
func (v *view) rebase(n int) {
	fresh := make([]int32, n)
	copy(fresh, v.pos)
	v.pos = fresh
}

// rebuild is an annotated writer: it may initialize through the field
// because it owns the freshly-installed slice. No finding.
//
//adjlint:cow-writer
func (v *view) rebuild(n int) {
	fresh := make([]int32, n)
	v.pos = fresh
	v.pos[0] = -1
}

// scratchWrite mutates an unannotated sibling field: no finding.
func (v *view) scratchWrite(i int, p int32) {
	v.scratch[i] = p
}

// layer exercises the type-level annotation: every slice field is
// covered, scalar fields are not.
//
//adjlint:cow
type layer struct {
	ptr []int
	n   int
}

func (l *layer) ptrBad(i int) {
	l.ptr[i] = 0 // want `element write to COW field ptr`
}

func (l *layer) scalarOK() {
	l.n = 3
}
