// Package analysis is a dependency-free, API-compatible subset of
// golang.org/x/tools/go/analysis — just enough framework for the
// adjlint analyzers (Analyzer, Pass, Diagnostic, Reportf).
//
// The repo bakes in no third-party modules (the same constraint that
// produced internal/obs), so the x/tools module is not available to
// import; this package mirrors the shape of its exported API so every
// analyzer in internal/lint can be ported to the real framework by
// changing one import line. Facts, Requires-chaining, and suggested
// fixes are deliberately omitted: all adjlint analyzers are
// single-package AST+types passes.
//
// Suppression: a diagnostic whose line (or the line immediately above
// it) carries a comment of the form
//
//	//adjlint:ignore <analyzer-name> [reason]
//
// is dropped by Pass.Report before it reaches the driver. The
// annotation is how a human marks a discard or mutation as audited —
// the analyzers in this module require the name so one annotation
// cannot silence unrelated checks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one named check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //adjlint:ignore annotations. It must be a valid Go identifier.
	Name string
	// Doc is the help text; the first line is the one-line summary.
	Doc string
	// Run applies the analyzer to a package. It reports findings via
	// pass.Report/Reportf and returns an optional result (unused by
	// the adjlint driver, kept for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass hands an analyzer one type-checked package and collects its
// diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic. Drivers install the sink; analyzer
	// code should call the method wrappers below so the ignore
	// annotations are honored.
	Report func(Diagnostic)

	// ignoreIndex caches the per-file //adjlint:ignore lines, built
	// lazily on first report.
	ignoreIndex map[string]map[int]string
}

// Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional sub-category within the analyzer
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a formatted diagnostic spanning an AST node.
func (p *Pass) ReportRangef(rng ast.Node, format string, args ...any) {
	p.report(Diagnostic{Pos: rng.Pos(), End: rng.End(), Message: fmt.Sprintf(format, args...)})
}

func (p *Pass) report(d Diagnostic) {
	if p.suppressed(d.Pos) {
		return
	}
	p.Report(d)
}

// suppressed reports whether an //adjlint:ignore annotation for this
// analyzer covers the diagnostic's line or the line above it.
func (p *Pass) suppressed(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	if p.ignoreIndex == nil {
		p.buildIgnoreIndex()
	}
	position := p.Fset.Position(pos)
	lines, ok := p.ignoreIndex[position.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		if names, ok := lines[line]; ok && ignoreCovers(names, p.Analyzer.Name) {
			return true
		}
	}
	return false
}

func (p *Pass) buildIgnoreIndex() {
	p.ignoreIndex = map[string]map[int]string{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//adjlint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := p.ignoreIndex[pos.Filename]
				if m == nil {
					m = map[int]string{}
					p.ignoreIndex[pos.Filename] = m
				}
				m[pos.Line] = strings.TrimSpace(rest)
			}
		}
	}
}

// ignoreCovers reports whether the annotation's analyzer-name list
// (the first whitespace-separated, comma-split token; the rest is the
// human reason) includes name.
func ignoreCovers(spec, name string) bool {
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		return false // bare //adjlint:ignore names no analyzer: covers nothing
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n == name {
			return true
		}
	}
	return false
}
