// Package lint assembles the adjlint analyzer suite — the static half
// of the repo's exactness and durability invariants (the dynamic half
// is internal/conformance). Each analyzer encodes a bug class a past
// PR had to find by hand:
//
//	detfold     nondeterministic ⊕-folds over map iteration (PR 4's
//	            PageRank dangling-sum)
//	syncerr     discarded fsync/close errors on the durable write path
//	            (PR 6's WAL)
//	poolleak    sync.Pool scratch escaping or aliased after Put (PR 5's
//	            kernel scratch)
//	kernelopts  assoc.MulOptions combinations that only fail at runtime
//	            (PR 2's Kernel/Workers conflict, PR 7's masked-kernel
//	            restriction)
//	cowmut      in-place mutation of snapshot-shared //adjlint:cow
//	            slices (PR 5/7's copy-on-write id→position arrays)
//
// plus ports of the x/tools nilness, shadow, and unusedwrite passes
// (see internal/lint/extra for why they are local reimplementations).
package lint

import (
	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/cowmut"
	"adjarray/internal/lint/detfold"
	"adjarray/internal/lint/extra"
	"adjarray/internal/lint/kernelopts"
	"adjarray/internal/lint/loader"
	"adjarray/internal/lint/poolleak"
	"adjarray/internal/lint/syncerr"
)

// Analyzers returns the full adjlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detfold.Analyzer,
		syncerr.Analyzer,
		poolleak.Analyzer,
		kernelopts.Analyzer,
		cowmut.Analyzer,
		extra.Nilness,
		extra.Shadow,
		extra.Unusedwrite,
	}
}

// Finding is one diagnostic attributed to its analyzer, with the
// position already rendered.
type Finding struct {
	Analyzer string
	Position string // file:line:col
	Message  string
}

// RunPackage applies the given analyzers to one loaded package.
func RunPackage(p *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := p.Fset.Position(d.Pos)
			out = append(out, Finding{
				Analyzer: a.Name,
				Position: pos.String(),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	return out, nil
}
