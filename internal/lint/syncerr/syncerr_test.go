package syncerr_test

import (
	"testing"

	"adjarray/internal/lint/linttest"
	"adjarray/internal/lint/syncerr"
)

func TestSyncerr(t *testing.T) {
	linttest.Run(t, "testdata/syncerrtest", syncerr.New("syncerrtest"))
}

// TestOutOfScope runs the same fixture under a scope that cannot match
// its package: every deliberate discard in the fixture must then go
// unreported, proving the analyzer stays silent off the durable write
// path.
func TestOutOfScope(t *testing.T) {
	linttest.RunNoFindings(t, "testdata/syncerrtest", syncerr.New("some/other/path"))
}
