// Package syncerr flags discarded error returns from durability-
// critical calls — Sync, Close, Flush, and Truncate on *os.File and on
// the WAL/stream writer types — inside the packages that own the
// durable write path (internal/wal, internal/stream, cmd/crashtest).
//
// A WAL that drops an fsync error has silently voided its durability
// contract: the caller was acknowledged, the kernel reported the data
// may not be on stable storage, and nobody will ever know. Every
// discard on the write path must either check the error or carry an
// //adjlint:ignore syncerr annotation stating why the discard is sound
// (e.g. best-effort cleanup on a path already returning an earlier
// error).
//
// Discard spellings detected: a bare expression statement, a defer or
// go statement, and an assignment whose corresponding results are all
// blank.
package syncerr

import (
	"go/ast"
	"go/types"
	"strings"

	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/lintutil"
)

// DefaultScope lists the package-path suffixes the analyzer gates:
// the durable write path. Other packages' Close discards (read-side
// CLIs, tests) are not durability bugs and stay out of scope.
var DefaultScope = []string{"internal/wal", "internal/stream", "cmd/crashtest"}

// methodNames are the durability-bearing methods whose error return
// must not be discarded.
var methodNames = map[string]bool{"Sync": true, "Close": true, "Flush": true, "Truncate": true}

// Analyzer is the syncerr pass over the default scope.
var Analyzer = New(DefaultScope...)

// New builds a syncerr analyzer scoped to packages whose import path
// ends with one of the given suffixes (tests use this to point the
// analyzer at fixture packages).
func New(scope ...string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "syncerr",
		Doc:  "flag discarded Sync/Close/Flush/Truncate errors on the durable write path (durability silently voided otherwise)",
		Run: func(pass *analysis.Pass) (any, error) {
			return run(pass, scope)
		},
	}
}

func run(pass *analysis.Pass, scope []string) (any, error) {
	if !inScope(pass.Pkg.Path(), scope) {
		return nil, nil
	}
	for _, f := range lintutil.NonTestFiles(pass.Fset, pass.Files) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
					check(pass, call, "discarded")
				}
			case *ast.DeferStmt:
				check(pass, stmt.Call, "discarded by defer")
			case *ast.GoStmt:
				check(pass, stmt.Call, "discarded by go statement")
			case *ast.AssignStmt:
				// x, _ = f() discards selectively; flag only when every
				// assigned position is blank (a lone call on the RHS).
				if len(stmt.Rhs) != 1 || !allBlank(stmt.Lhs) {
					return true
				}
				if call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr); ok {
					check(pass, call, "assigned to blank")
				}
			}
			return true
		})
	}
	return nil, nil
}

func inScope(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) || strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// check reports the call if it is a durability-bearing method whose
// error result is being discarded.
func check(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil || !methodNames[fn.Name()] || !returnsError(fn) {
		return
	}
	rt := lintutil.ReceiverType(fn)
	if rt == nil {
		return
	}
	pkgPath, typeName := lintutil.NamedPath(rt)
	if !durabilityBearing(pkgPath, typeName) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s error from (%s.%s).%s: a dropped %s error silently voids durability — check it or annotate //adjlint:ignore syncerr with a reason",
		how, pkgPath, typeName, fn.Name(), strings.ToLower(fn.Name()))
}

// durabilityBearing reports whether methods on this receiver type are
// on the durable write path: os.File itself, and every exported type
// of the WAL and stream packages (writers, durable views, sharded
// views, checkpoint stores).
func durabilityBearing(pkgPath, typeName string) bool {
	switch pkgPath {
	case "os":
		return typeName == "File"
	case "adjarray/internal/wal", "adjarray/internal/stream":
		return true
	}
	return false
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
