// Fixture for the syncerr analyzer. The package name ends in a scope
// suffix the test passes to syncerr.New, putting it on the "durable
// write path" for the analyzer's purposes.
package syncerrtest

import (
	"os"

	"adjarray/internal/wal"
)

// flushBad drops the fsync error — the exact failure mode the WAL's
// durability contract forbids.
func flushBad(f *os.File) {
	f.Sync() // want `discarded error from \(os\.File\)\.Sync`
}

// closeDeferred discards through a defer.
func closeDeferred(f *os.File) {
	defer f.Close() // want `discarded by defer error from \(os\.File\)\.Close`
	f.WriteString("x")
}

// blankAssign discards by assigning to blank.
func blankAssign(f *os.File) {
	_ = f.Sync() // want `assigned to blank error from \(os\.File\)\.Sync`
}

// walClose drops a WAL writer close — rotation/final-sync errors vanish.
func walClose(w *wal.Writer) {
	w.Close() // want `discarded error from \(adjarray/internal/wal\.Writer\)\.Close`
}

// flushGood is the checked-fsync pattern from internal/wal/writer.go
// verbatim: no finding.
func flushGood(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// walSyncGood checks the WAL sync: no finding.
func walSyncGood(w *wal.Writer) error {
	if err := w.Sync(); err != nil {
		return err
	}
	return nil
}

// cleanupAnnotated is a sanctioned discard on an error path, carrying
// the required annotation: suppressed, no finding.
func cleanupAnnotated(f *os.File, failed error) error {
	if failed != nil {
		f.Close() //adjlint:ignore syncerr error-path cleanup; failed is the error returned
		return failed
	}
	return f.Close()
}

// writeDiscard drops a non-durability method: out of the analyzer's
// scope, no finding.
func writeDiscard(f *os.File) {
	f.WriteString("not a durability call")
}
