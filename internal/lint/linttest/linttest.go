// Package linttest is the adjlint counterpart of
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture
// package from a testdata directory, runs one analyzer over it, and
// matches the produced diagnostics against `// want` expectations in
// the fixture source.
//
// Expectation syntax (the analysistest subset the fixtures use): a
// line that should receive diagnostics carries a comment
//
//	// want `regexp` `another regexp`
//
// with one back-quoted regular expression per expected diagnostic on
// that line. Every diagnostic must be matched by an expectation on its
// line and every expectation must match exactly one diagnostic;
// anything else fails the test with a per-line report.
//
// Fixture packages live under testdata/ (so `./...` never builds
// their deliberate bugs) and may import real repo packages — imports
// are resolved through compiled export data from the module's build
// cache, exactly like the standalone driver.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/loader"
)

// Run loads the fixture package in dir, applies the analyzer, and
// reports expectation mismatches on t. The fixture's package path is
// its package name — scoped analyzers key off it (e.g. a package named
// syncerrtest for syncerr.New("syncerrtest")).
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset, files, imports := parseFixture(t, dir)
	pkg, info := typecheckFixture(t, fset, files, imports)
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("linttest: analyzer %s: %v", a.Name, err)
	}
	compare(t, fset, files, got)
}

// parseFixture reads every .go file in dir and collects its imports.
func parseFixture(t *testing.T, dir string) (*token.FileSet, []*ast.File, map[string]bool) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}
	return fset, files, imports
}

// RunNoFindings loads the fixture package in dir and asserts the
// analyzer reports nothing, ignoring any `// want` comments. Scoped
// analyzers use it to prove they stay silent off their scope.
func RunNoFindings(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset, files, imports := parseFixture(t, dir)
	pkg, info := typecheckFixture(t, fset, files, imports)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report: func(d analysis.Diagnostic) {
			t.Errorf("%s: unexpected diagnostic: %s", position(fset.Position(d.Pos)), d.Message)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("linttest: analyzer %s: %v", a.Name, err)
	}
}

// typecheckFixture resolves fixture imports via `go list -export` over
// the enclosing module (tests run inside it) and type-checks.
func typecheckFixture(t *testing.T, fset *token.FileSet, files []*ast.File, imports map[string]bool) (*types.Package, *types.Info) {
	t.Helper()
	imp := fixtureImporter(t, fset, imports)
	info := loader.NewInfo()
	conf := &types.Config{Importer: imp}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: fixture does not type-check: %v", err)
	}
	return pkg, info
}

func fixtureImporter(t *testing.T, fset *token.FileSet, imports map[string]bool) types.Importer {
	t.Helper()
	if len(imports) == 0 {
		return nil
	}
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exports, err := loader.ExportClosure("", paths...)
	if err != nil {
		t.Fatalf("linttest: resolving fixture imports: %v", err)
	}
	return loader.ExportImporter(fset, exports)
}

// expectation is one `// want`-declared regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("`([^`]*)`")

func compare(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(body, -1)
				if len(ms) == 0 {
					t.Errorf("%s:%d: malformed want comment (no back-quoted regexps): %s", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range got {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", position(pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func position(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
