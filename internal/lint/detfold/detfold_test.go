package detfold_test

import (
	"testing"

	"adjarray/internal/lint/detfold"
	"adjarray/internal/lint/linttest"
)

func TestDetfold(t *testing.T) {
	linttest.Run(t, "testdata/detfoldtest", detfold.Analyzer)
}
