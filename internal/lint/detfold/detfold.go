// Package detfold flags nondeterministic folds over Go map iteration —
// the PR 4 PageRank bug class, and the code-level half of the paper's
// exactness condition: Definition I.3 only pins down A when the ⊕-fold
// order is determined, and `for range` over a map supplies a different
// order every run. A float accumulation inside such a loop makes the
// final bits run-dependent (float ⊕ is not associative); a slice built
// by appending in map order bakes the nondeterminism into any output
// derived from it.
//
// Reported patterns, inside the body of a `for … range m` where m is a
// map:
//
//   - x += e, x -= e, x *= e, x /= e, or x = x ⊕ e, where x is a
//     float-typed variable declared outside the loop;
//   - s = append(s, …) where s is declared outside the loop, UNLESS s
//     is later passed to a sort (sort.Strings/Slice/…, slices.Sort*)
//     in the same function — the collect-then-sort idiom is the
//     sanctioned way to make map iteration deterministic.
//
// Order-independent folds (integer counts, max trackers guarded by
// comparisons, set inserts) are not flagged. A genuinely
// order-independent float fold can be annotated
// //adjlint:ignore detfold with a reason.
package detfold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/lintutil"
)

// Analyzer is the detfold pass.
var Analyzer = &analysis.Analyzer{
	Name: "detfold",
	Doc:  "flag float accumulation or order-sensitive appends inside range-over-map loops (nondeterministic ⊕-fold)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range lintutil.NonTestFiles(pass.Fset, pass.Files) {
		lintutil.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			fn := lintutil.EnclosingFunc(append(stack, n))
			checkMapLoop(pass, rng, fn)
			return true
		})
	}
	return nil, nil
}

// checkMapLoop scans one range-over-map body for order-sensitive
// accumulation into variables declared outside the loop.
func checkMapLoop(pass *analysis.Pass, rng *ast.RangeStmt, fn ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		obj := objOf(pass, lhs)
		if obj == nil || declaredWithin(obj, rng) {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if lintutil.IsFloat(obj.Type()) || lintutil.IsFloat(pass.TypesInfo.TypeOf(lhs)) {
				pass.Reportf(as.Pos(),
					"float accumulation into %q inside range over map: iteration order is nondeterministic, so the ⊕-fold result is run-dependent; iterate a sorted key list instead",
					obj.Name())
			}
		case token.ASSIGN:
			rhs := ast.Unparen(as.Rhs[0])
			if isSelfFold(pass, rhs, obj) && lintutil.IsFloat(obj.Type()) {
				pass.Reportf(as.Pos(),
					"float accumulation into %q inside range over map: iteration order is nondeterministic, so the ⊕-fold result is run-dependent; iterate a sorted key list instead",
					obj.Name())
				return true
			}
			if call, ok := rhs.(*ast.CallExpr); ok && isAppendToSelf(pass, call, lhs, obj) {
				if !sortedAfter(pass, fn, rng, obj) {
					pass.Reportf(as.Pos(),
						"append to %q inside range over map bakes nondeterministic iteration order into the slice; sort it afterwards or iterate sorted keys",
						obj.Name())
				}
			}
		}
		return true
	})
}

// objOf resolves the accumulated-into variable: a plain identifier, or
// the root object of a selector like acc.total (the field's owner is
// what must be loop-local for the fold to be benign, so use the field
// object itself when resolvable).
func objOf(pass *analysis.Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return lintutil.Obj(pass.TypesInfo, x)
	case *ast.SelectorExpr:
		return lintutil.Obj(pass.TypesInfo, x.Sel)
	}
	return nil
}

// declaredWithin reports whether obj's declaration lies inside the
// range statement (loop-local accumulators reset each entry are fine —
// they cannot carry order across iterations... but a var declared in
// the BODY is re-created per iteration, so only body-declared objects
// qualify; the range key/value variables do too).
func declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// isSelfFold matches x ⊕ e / e ⊕ x binary expressions over the
// accumulator object for commutative-looking spellings of +=.
func isSelfFold(pass *analysis.Pass, rhs ast.Expr, obj types.Object) bool {
	b, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	return refersTo(pass, b.X, obj) || refersTo(pass, b.Y, obj)
}

func refersTo(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && lintutil.Obj(pass.TypesInfo, id) == obj
}

// isAppendToSelf matches s = append(s, …).
func isAppendToSelf(pass *analysis.Pass, call *ast.CallExpr, lhs ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := lintutil.Obj(pass.TypesInfo, id).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	return objOf(pass, call.Args[0]) == obj
}

// sortedAfter reports whether, after the range loop, the enclosing
// function passes the accumulated slice to a sorting function — the
// stdlib sort/slices packages, or any helper whose name says it sorts
// (the repo's sortStrings-style wrappers) — the idiom that restores
// determinism.
func sortedAfter(pass *analysis.Pass, fn ast.Node, rng *ast.RangeStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || sorted {
			return !sorted
		}
		callee := lintutil.Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		isSorter := strings.Contains(strings.ToLower(callee.Name()), "sort")
		if pkg := callee.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			isSorter = true
		}
		if !isSorter {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(pass, arg, obj) || objOf(pass, arg) == obj || rootRefersTo(pass, arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func rootRefersTo(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id := lintutil.RootIdent(e)
	return id != nil && lintutil.Obj(pass.TypesInfo, id) == obj
}
