// Fixture for the detfold analyzer: nondeterministic ⊕-folds over map
// iteration, plus the sanctioned spellings that must NOT be flagged.
package detfoldtest

import "sort"

// sumScores is the PR 4 PageRank dangling-sum bug class verbatim: a
// float accumulated in map order.
func sumScores(scores map[string]float64) float64 {
	var total float64
	for _, v := range scores {
		total += v // want `float accumulation into "total" inside range over map`
	}
	return total
}

// selfFold spells the same bug as x = x + e.
func selfFold(scores map[string]float64) float64 {
	var total float64
	for _, v := range scores {
		total = total + v // want `float accumulation into "total" inside range over map`
	}
	return total
}

// keysUnsorted bakes map order into a slice that escapes.
func keysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `append to "ks" inside range over map`
	}
	return ks
}

// keysSorted is the sanctioned collect-then-sort idiom: no finding.
func keysSorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// keysHelperSorted sorts through a local wrapper, the repo's
// sortStrings pattern: no finding.
func keysHelperSorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sortStrings(ks)
	return ks
}

func sortStrings(xs []string) { sort.Strings(xs) }

// fieldCollect appends into a struct field and sorts it after — the
// field-selector spelling of collect-then-sort: no finding.
type bag struct{ items []string }

func (b *bag) fieldCollect(m map[string]bool) {
	for k := range m {
		b.items = append(b.items, k)
	}
	sort.Strings(b.items)
}

// intCount folds an order-independent integer: no finding.
func intCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// loopLocal accumulates into a variable created each iteration: no
// finding (it cannot carry order across iterations).
func loopLocal(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		w := v
		w *= 2
		out[k] = w
	}
}

// annotated shows the escape hatch for a genuinely order-independent
// float fold: suppressed, no finding.
func annotated(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//adjlint:ignore detfold values are exact small integers; the fold is associative
		total += v
	}
	return total
}
