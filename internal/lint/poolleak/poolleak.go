// Package poolleak flags sync.Pool misuse of the kind that caused the
// PR 5 scratch-aliasing bug: a Get result that escapes the function
// (returned, stored into a field or global, sent on a channel) without
// a matching Put, or a Get result that is both Put back AND retained
// somewhere that outlives the function — after the Put, the pool may
// hand the same object to another goroutine, so the retained alias is
// a data race in waiting.
//
// The analysis is intra-procedural and conservative: it tracks
// variables directly initialized from (*sync.Pool).Get (possibly
// through a type assertion) and inspects the enclosing function for a
// Put of the same variable and for escape sites.
//
// Sanctioned ownership transfer — a helper whose PURPOSE is to hand a
// pooled object to its caller, with the paired Put in a sibling
// release helper (the repo's getAccBox/releaseKernelScratch pattern) —
// is annotated at the function level:
//
//	//adjlint:pool-transfer
//
// on the helper's doc comment. Inside such a function the
// escape-without-Put check is suppressed (the retain-after-Put check
// still applies).
package poolleak

import (
	"go/ast"
	"go/types"

	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/lintutil"
)

// TransferDirective marks a function that intentionally transfers
// ownership of a pooled object to its caller.
const TransferDirective = "//adjlint:pool-transfer"

// Analyzer is the poolleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolleak",
	Doc:  "flag sync.Pool.Get results that escape without a Put, or stay reachable after the Put (scratch aliasing)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range lintutil.NonTestFiles(pass.Fset, pass.Files) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body, lintutil.FuncHasDirective(fd, TransferDirective))
		}
	}
	return nil, nil
}

// checkFunc analyzes one function body. Function literals inside it
// are analyzed as part of the same body: a closure returning a pooled
// object still leaks it from the pool's perspective.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, transfer bool) {
	// 1. Collect Get-result variables: x := pool.Get().(T) / x := pool.Get().
	gets := map[types.Object]*ast.CallExpr{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call := getCall(pass, rhs)
			if call == nil || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if obj := lintutil.Obj(pass.TypesInfo, id); obj != nil {
					gets[obj] = call
				}
			}
		}
		return true
	})

	// Direct escape of an unnamed Get: return pool.Get().(T).
	if !transfer {
		ast.Inspect(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if call := getCall(pass, res); call != nil {
					pass.Reportf(call.Pos(),
						"sync.Pool.Get result returned without a matching Put; if this helper transfers ownership, annotate it %s", TransferDirective)
				}
			}
			return true
		})
	}

	// 2. For each tracked variable, find Puts and escapes.
	for obj, getCall := range gets {
		put := findPut(pass, body, obj)
		escape := findEscape(pass, body, obj)
		switch {
		case put == nil && escape != nil && !transfer:
			pass.Reportf(escape.Pos(),
				"sync.Pool.Get result %q escapes the function without a matching Put; pool it back or annotate the helper %s", obj.Name(), TransferDirective)
		case put != nil && escape != nil && escape.Pos() != getCall.Pos():
			pass.Reportf(escape.Pos(),
				"sync.Pool.Get result %q is retained here but also Put back at line %d: after the Put the pool may hand it to another goroutine (aliasing race)",
				obj.Name(), pass.Fset.Position(put.Pos()).Line)
		}
	}
}

// getCall matches (*sync.Pool).Get() with optional type assertion and
// parens, returning the Get call or nil.
func getCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	switch x := ast.Unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return getCall(pass, x.X)
	case *ast.CallExpr:
		fn := lintutil.Callee(pass.TypesInfo, x)
		if lintutil.IsMethodOn(fn, "sync", "Pool", "Get") {
			return x
		}
	}
	return nil
}

// findPut returns a (*sync.Pool).Put call whose argument is obj (or a
// parenthesized/asserted spelling of it), or nil.
func findPut(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) *ast.CallExpr {
	var put *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || put != nil {
			return put == nil
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if !lintutil.IsMethodOn(fn, "sync", "Pool", "Put") || len(call.Args) != 1 {
			return true
		}
		if id := lintutil.RootIdent(call.Args[0]); id != nil && lintutil.Obj(pass.TypesInfo, id) == obj {
			put = call
			return false
		}
		return true
	})
	return put
}

// findEscape returns a node where obj escapes the function: returned,
// assigned into a selector/index/global, appended into something
// assigned to a selector, or sent on a channel. Passing obj to a call
// is NOT treated as an escape (the callee is usually the consumer that
// puts it back); storing it is.
func findEscape(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) ast.Node {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && lintutil.Obj(pass.TypesInfo, id) == obj
	}
	var escape ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if escape != nil {
			return false
		}
		switch stmt := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range stmt.Results {
				if isObj(r) {
					escape = stmt
				}
			}
		case *ast.SendStmt:
			if isObj(stmt.Value) {
				escape = stmt
			}
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				target := ast.Unparen(lhs)
				stored := false
				switch t := target.(type) {
				case *ast.SelectorExpr:
					stored = true // field or qualified global
				case *ast.IndexExpr:
					stored = true // element of something longer-lived
				case *ast.Ident:
					// Assigning to a package-level variable escapes.
					if o := lintutil.Obj(pass.TypesInfo, t); o != nil && o.Parent() == pass.Pkg.Scope() {
						stored = true
					}
				}
				if !stored || i >= len(stmt.Rhs) && len(stmt.Rhs) != 1 {
					continue
				}
				rhs := stmt.Rhs[0]
				if len(stmt.Rhs) == len(stmt.Lhs) {
					rhs = stmt.Rhs[i]
				}
				if isObj(rhs) || appendsObj(pass, rhs, isObj) {
					escape = stmt
				}
			}
		}
		return escape == nil
	})
	return escape
}

// appendsObj matches append(…, obj, …) spellings on the RHS of a
// store.
func appendsObj(pass *analysis.Pass, e ast.Expr, isObj func(ast.Expr) bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	for _, arg := range call.Args[1:] {
		if isObj(arg) {
			return true
		}
	}
	return false
}
