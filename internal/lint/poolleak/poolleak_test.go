package poolleak_test

import (
	"testing"

	"adjarray/internal/lint/linttest"
	"adjarray/internal/lint/poolleak"
)

func TestPoolleak(t *testing.T) {
	linttest.Run(t, "testdata/poolleaktest", poolleak.Analyzer)
}
