// Fixture for the poolleak analyzer: sync.Pool scratch escaping or
// aliased after Put — the PR 5 kernel-scratch bug class.
package poolleaktest

import "sync"

type box struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(box) }}

var global *box

// leakReturn hands a pooled object straight out without the transfer
// annotation.
func leakReturn() *box {
	return pool.Get().(*box) // want `sync\.Pool\.Get result returned without a matching Put`
}

// leakGlobal parks a pooled object in a package-level variable.
func leakGlobal() {
	b := pool.Get().(*box)
	global = b // want `sync\.Pool\.Get result "b" escapes the function without a matching Put`
}

// retainAfterPut returns an alias to an object already handed back:
// the pool may give it to another goroutine while the caller still
// holds it.
func retainAfterPut() *box {
	b := pool.Get().(*box)
	pool.Put(b)
	return b // want `retained here but also Put back at line`
}

// useLocal is the correct borrow pattern: get, use, put, no alias
// survives. No finding.
func useLocal() int {
	b := pool.Get().(*box)
	n := len(b.b)
	pool.Put(b)
	return n
}

// getBox is the repo's getAccBox/releaseKernelScratch ownership
// transfer, sanctioned by annotation: no finding.
//
//adjlint:pool-transfer
func getBox() *box {
	return pool.Get().(*box)
}

// putBox is the paired release helper.
func putBox(b *box) { pool.Put(b) }
