// Package lintutil holds the AST/types helpers the adjlint analyzers
// share: callee resolution, receiver classification, directive
// scanning, and the non-test file filter.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NonTestFiles returns the package files that are not _test.go files.
// The adjlint analyzers gate production source: test files exercise
// deliberate misuse (error-injection, fixtures for the runtime guards)
// and are themselves checked dynamically by the suites they implement.
func NonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// Callee resolves the called function/method object of a call, or nil
// for calls through function values, builtins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ReceiverType returns the receiver type of a method object with
// pointers stripped, or nil for plain functions.
func ReceiverType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t
}

// NamedPath returns (package path, type name) for a named or aliased
// type, following pointers, or ("", "") otherwise.
func NamedPath(t types.Type) (string, string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// IsMethodOn reports whether fn is a method named name whose receiver
// (pointer-stripped) is the named type pkgPath.typeName.
func IsMethodOn(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	rt := ReceiverType(fn)
	if rt == nil {
		return false
	}
	p, n := NamedPath(rt)
	return p == pkgPath && n == typeName
}

// IsFloat reports whether t's core type is a floating-point scalar.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// HasDirective reports whether any comment in the group is exactly the
// given //adjlint: directive (e.g. "//adjlint:cow"), optionally
// followed by whitespace and free text.
func HasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// FuncHasDirective reports whether the function declaration carries
// the directive in its doc comment.
func FuncHasDirective(fd *ast.FuncDecl, directive string) bool {
	return HasDirective(fd.Doc, directive)
}

// Obj resolves an identifier to its object (Uses or Defs).
func Obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// RootIdent peels selectors/index/paren/star expressions down to the
// base identifier: v.srcPos[i] → v, (*p).f → p. Returns nil when the
// base is not an identifier (a call result, composite literal, …).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// EnclosingFunc returns the innermost function declaration or literal
// in stack (a path of ancestor nodes, outermost first) — the scope
// unit the intra-procedural analyzers reason over.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// WalkStack traverses root, invoking fn with each node and the stack
// of its ancestors (outermost first, excluding the node itself). A
// false return prunes the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
