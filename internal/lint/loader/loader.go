// Package loader loads type-checked packages for the adjlint
// analyzers without golang.org/x/tools/go/packages: it shells out to
// `go list -export -deps -json` for package metadata and compiled
// export data, parses the target packages from source, and type-checks
// them against the export data through the standard library's gc
// importer (the same mechanism x/tools' unitchecker uses). Offline by
// construction — everything comes from the local build cache.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path    string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	GoFiles []string
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (go list syntax; dir "" = cwd), compiles
// their dependency closure for export data, and returns the matched
// (non-dependency) packages parsed from source and type-checked.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, exports, err := list(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*Package
	for _, lp := range pkgs {
		if lp.DepOnly || lp.Standard {
			continue
		}
		p, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// list runs go list and returns the decoded packages plus the
// importpath→export-file map over the whole closure.
func list(dir string, patterns ...string) ([]*listPackage, map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	dec := json.NewDecoder(outPipe)
	var pkgs []*listPackage
	exports := map[string]string{}
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, nil, fmt.Errorf("lint/loader: decoding go list output: %v (stderr: %s)", err, stderr.String())
		}
		pkgs = append(pkgs, lp)
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("lint/loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return pkgs, exports, nil
}

// ExportClosure compiles the named import paths (run from dir; "" =
// cwd) and returns export-data files for them and their transitive
// dependencies — what a fixture package's importer needs.
func ExportClosure(dir string, paths ...string) (map[string]string, error) {
	_, exports, err := list(dir, paths...)
	return exports, err
}

// ExportImporter builds a types.Importer that resolves import paths
// through compiled export data files (importpath → file path), via the
// standard gc importer.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint/loader: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// NewInfo allocates a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	if lp.Error != nil {
		return nil, fmt.Errorf("lint/loader: %s: %s", lp.ImportPath, lp.Error.Err)
	}
	var files []*ast.File
	var paths []string
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint/loader: %v", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := NewInfo()
	conf := &types.Config{Importer: imp}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint/loader: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:    lp.ImportPath,
		Fset:    fset,
		Files:   files,
		Types:   pkg,
		Info:    info,
		GoFiles: paths,
	}, nil
}
