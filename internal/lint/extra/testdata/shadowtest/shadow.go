// Fixture for the bundled shadow port.
package shadowtest

func shadowed(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := total + x // want `declaration of "total" shadows declaration at line`
			_ = total
		}
	}
	return total
}

// noShadow accumulates into the one variable: no finding.
func noShadow(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// errShadow is the idiomatic if err := pattern: exempted, no finding.
func errShadow(f func() error) error {
	err := f()
	if err := f(); err != nil {
		return err
	}
	return err
}
