// Fixture for the bundled nilness port.
package nilnesstest

type node struct {
	name string
	next *node
}

func derefNil(p *node) string {
	if p == nil {
		return p.name // want `nil dereference: field name read through p, which is nil on this branch`
	}
	return p.name
}

// derefAfterRepair reassigns before the read: no finding.
func derefAfterRepair(p *node) string {
	if p == nil {
		p = &node{}
		return p.name
	}
	return p.name
}

// nilMethodOK calls a works-on-nil method: no finding.
func nilMethodOK(p *node) bool {
	if p == nil {
		return p.isNil()
	}
	return false
}

func (p *node) isNil() bool { return p == nil }
