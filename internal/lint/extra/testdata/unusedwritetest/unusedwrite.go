// Fixture for the bundled unusedwrite port.
package unusedwritetest

type counter struct{ n int }

// bumpLost mutates a copy that evaporates on return.
func (c counter) bumpLost() {
	c.n = c.n + 1 // want `write to field n of value receiver is never read`
}

// bumpReturned passes the mutated copy on: no finding.
func (c counter) bumpReturned() counter {
	c.n = c.n + 1
	return c
}

// bumpPointer writes through a pointer receiver: no finding.
func (c *counter) bumpPointer() {
	c.n = c.n + 1
}
