// Package extra bundles adjlint's ports of three x/tools passes —
// nilness, shadow, and unusedwrite. The real passes cannot be imported
// (this module bakes in no third-party dependencies, and two of the
// originals require the SSA construction x/tools provides), so these
// are deliberately CONSERVATIVE reimplementations of each pass's
// highest-signal core on plain AST+types: every pattern they flag is a
// bug or dead code under the same definition the original uses, but
// they find strictly fewer instances. Porting to the originals is a
// one-line import change per analyzer once the module vendors x/tools.
package extra

import (
	"go/ast"
	"go/token"
	"go/types"

	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/lintutil"
)

// Nilness flags dereferences of a pointer inside the very branch that
// established it is nil: `if p == nil { … p.f … }` with no intervening
// reassignment of p. (The x/tools original proves nilness along all
// SSA paths; this port handles the single-branch case, which is where
// the serving handlers' nil-snapshot bugs live.)
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flag pointer dereferences inside the branch that proved the pointer nil",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) (any, error) {
	for _, f := range lintutil.NonTestFiles(pass.Fset, pass.Files) {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Init != nil {
				return true
			}
			obj := nilCheckedObj(pass, ifs.Cond)
			if obj == nil {
				return true
			}
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
				return true
			}
			reportNilDerefs(pass, ifs.Body, obj)
			return true
		})
	}
	return nil, nil
}

// nilCheckedObj matches `x == nil` over a plain identifier.
func nilCheckedObj(pass *analysis.Pass, cond ast.Expr) types.Object {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return nil
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNilIdent(pass, y) {
		// fallthrough with x
	} else if isNilIdent(pass, x) {
		x = y
	} else {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	return lintutil.Obj(pass.TypesInfo, id)
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := lintutil.Obj(pass.TypesInfo, id).(*types.Nil)
	return isNil
}

// reportNilDerefs walks the then-branch, stopping at any reassignment
// of obj, reporting field selections and explicit dereferences.
func reportNilDerefs(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) {
	reassigned := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned.IsValid() && n != nil && n.Pos() > reassigned {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && lintutil.Obj(pass.TypesInfo, id) == obj {
					reassigned = x.Pos()
				}
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && lintutil.Obj(pass.TypesInfo, id) == obj {
				pass.Reportf(x.Pos(), "nil dereference: this branch is only reached when %s is nil", obj.Name())
			}
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(x.X).(*ast.Ident)
			if !ok || lintutil.Obj(pass.TypesInfo, id) != obj {
				return true
			}
			// Selecting a FIELD through a nil pointer panics; calling a
			// METHOD may be a legitimate works-on-nil method, so only
			// field selections are reported.
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(x.Pos(), "nil dereference: field %s read through %s, which is nil on this branch", x.Sel.Name, obj.Name())
			}
		}
		return true
	})
}

// Shadow flags an inner short-variable declaration that shadows a
// function-local variable of identical type when the outer variable is
// still used after the point of the shadowing declaration — the
// configuration where a write to the wrong one silently diverges
// (x/tools' shadow heuristic, minus its span refinements).
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "flag inner declarations that shadow a still-live outer variable of the same type",
	Run:  runShadow,
}

func runShadow(pass *analysis.Pass) (any, error) {
	for _, f := range lintutil.NonTestFiles(pass.Fset, pass.Files) {
		for id, obj := range pass.TypesInfo.Defs {
			if obj == nil || id.Name == "_" || id.Name == "err" {
				// err shadowing is idiomatic at every `if err := …` site;
				// the originals special-case it via span heuristics.
				continue
			}
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() || !inFile(pass, f, id.Pos()) || !isShortDecl(pass, f, id) {
				continue
			}
			checkShadow(pass, f, id, v)
		}
	}
	return nil, nil
}

func inFile(pass *analysis.Pass, f *ast.File, pos token.Pos) bool {
	return f.FileStart <= pos && pos < f.FileEnd
}

// isShortDecl reports whether id is declared by := (not a func param,
// range variable shadowing is the same class but param shadowing is
// deliberate API shape).
func isShortDecl(pass *analysis.Pass, f *ast.File, id *ast.Ident) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || found {
			return !found
		}
		for _, lhs := range as.Lhs {
			if lhs == ast.Expr(id) {
				found = true
			}
		}
		return !found
	})
	return found
}

func checkShadow(pass *analysis.Pass, f *ast.File, id *ast.Ident, inner *types.Var) {
	scope := pass.Pkg.Scope().Innermost(id.Pos())
	if scope == nil {
		return
	}
	// Look up the name OUTSIDE the innermost scope: a hit that is a
	// function-local variable declared earlier is the shadowed one.
	_, outerObj := scope.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer == inner || outer.IsField() {
		return
	}
	if outer.Parent() == pass.Pkg.Scope() || outer.Parent() == types.Universe {
		return // package-level shadowing is ubiquitous and deliberate
	}
	if !types.Identical(outer.Type(), inner.Type()) {
		return
	}
	// The outer variable must still be used after the shadowing
	// declaration for the shadow to be able to bite.
	usedAfter := false
	ast.Inspect(f, func(n ast.Node) bool {
		if usedAfter {
			return false
		}
		u, ok := n.(*ast.Ident)
		if ok && u.Pos() > id.Pos() && pass.TypesInfo.Uses[u] == outer {
			usedAfter = true
		}
		return true
	})
	if usedAfter {
		pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d; the outer variable is still used after this point",
			id.Name, pass.Fset.Position(outer.Pos()).Line)
	}
}

// Unusedwrite flags writes to fields of a VALUE receiver when the
// receiver is never read again in the method — the write mutates a
// copy and is lost on return (the highest-signal instance of the
// x/tools unusedwrite pass, which needs SSA for the general case).
var Unusedwrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "flag field writes through a value receiver that are never read (the write mutates a copy)",
	Run:  runUnusedwrite,
}

func runUnusedwrite(pass *analysis.Pass) (any, error) {
	for _, f := range lintutil.NonTestFiles(pass.Fset, pass.Files) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			field := fd.Recv.List[0]
			if len(field.Names) != 1 {
				continue
			}
			if _, isPtr := field.Type.(*ast.StarExpr); isPtr {
				continue
			}
			recv := pass.TypesInfo.Defs[field.Names[0]]
			if recv == nil {
				continue
			}
			if _, isStruct := recv.Type().Underlying().(*types.Struct); !isStruct {
				continue
			}
			checkValueReceiverWrites(pass, fd.Body, recv)
		}
	}
	return nil, nil
}

func checkValueReceiverWrites(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) {
	type write struct {
		stmt  *ast.AssignStmt
		field string
	}
	var writes []write
	lastUse := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || lintutil.Obj(pass.TypesInfo, id) != recv {
					continue
				}
				if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
					writes = append(writes, write{x, sel.Sel.Name})
				}
			}
		case *ast.Ident:
			if pass.TypesInfo.Uses[x] == recv && x.Pos() > lastUse {
				lastUse = x.Pos()
			}
		}
		return true
	})
	for _, w := range writes {
		// The receiver identifier inside the write's own LHS is not a
		// "read"; any use strictly after the assignment keeps the copy
		// alive (it may be returned or passed on with the new value).
		if lastUse <= w.stmt.End() {
			pass.Reportf(w.stmt.Pos(),
				"write to field %s of value receiver is never read: the method mutates a copy, use a pointer receiver", w.field)
		}
	}
}
