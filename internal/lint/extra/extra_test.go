package extra_test

import (
	"testing"

	"adjarray/internal/lint/extra"
	"adjarray/internal/lint/linttest"
)

func TestNilness(t *testing.T) {
	linttest.Run(t, "testdata/nilnesstest", extra.Nilness)
}

func TestShadow(t *testing.T) {
	linttest.Run(t, "testdata/shadowtest", extra.Shadow)
}

func TestUnusedwrite(t *testing.T) {
	linttest.Run(t, "testdata/unusedwritetest", extra.Unusedwrite)
}
