// Package dataset supplies the workloads of the paper's evaluation: the
// Figure-1 music-metadata table (reconstructed — see below), the
// Section III document/word corpus for set-valued arrays, and synthetic
// graph generators (Erdős–Rényi, R-MAT, bipartite, multi-edge streams)
// for the theorem and scaling experiments.
//
// Music data provenance: the paper shows a rasterized D4M view of 22
// tracks by the band Kitten. The sub-arrays that drive every computed
// number — E1 (Genre columns, Figures 2 and 4) and E2 (Writer columns,
// Figure 2) — are exactly recoverable from the printed figures plus the
// arithmetic of Figures 3 and 5, and are reproduced here bit-for-bit.
// The remaining fields (Artist/Date/Label/Release/Type) are constrained
// but not fully determined by the paper; this reconstruction uses every
// one of Figure 1's 31 columns and matches every row's printed nonzero
// count. Deviations, if any, affect only the Figure-1 display, never
// the computed adjacency arrays.
package dataset

import (
	"sort"

	"adjarray/internal/assoc"
)

// Music column-key constants (exploded "field|value" keys of Figure 1).
const (
	GenreElectronic = "Genre|Electronic"
	GenrePop        = "Genre|Pop"
	GenreRock       = "Genre|Rock"

	WriterBarrett  = "Writer|Barrett Rich"
	WriterChad     = "Writer|Chad Anderson"
	WriterChloe    = "Writer|Chloe Chaidez"
	WriterJulian   = "Writer|Julian Chaidez"
	WriterNicholas = "Writer|Nicholas Johns"
)

// musicRow is one track record of the dense source table.
type musicRow struct {
	key     string
	artist  string
	date    string
	genre   string
	label   string
	release string
	typ     string
	writers string
}

// musicRows is the 22-track reconstruction. Multi-valued cells use ";".
var musicRows = []musicRow{
	{"031013ktnA1", "Kitten", "2013-10-03", "Rock", "Atlantic;Elektra Records", "Japanese Eyes", "Single",
		"Chad Anderson;Chloe Chaidez;Nicholas Johns"},

	{"053013ktnA1", "Kastle;Kitten", "2013-05-30", "Electronic", "Elektra Records", "Like A Stranger", "EP",
		"Barrett Rich;Julian Chaidez"},
	{"053013ktnA2", "Bandayde", "2013-05-30", "Electronic", "Elektra Records", "Like A Stranger", "EP",
		"Julian Chaidez"},

	{"063012ktnA1", "Kitten", "2010-06-30", "Rock", "The Control Group", "Cut It Out", "EP",
		"Chad Anderson;Chloe Chaidez"},
	{"063012ktnA2", "Kitten", "2010-06-30", "Rock", "The Control Group", "Cut It Out", "EP",
		"Chad Anderson;Chloe Chaidez"},
	{"063012ktnA3", "Kitten", "2010-06-30", "Rock", "The Control Group", "Cut It Out", "EP",
		"Chad Anderson;Chloe Chaidez"},
	{"063012ktnA4", "Kitten", "2010-06-30", "Rock", "The Control Group", "Cut It Out", "EP",
		"Chad Anderson;Chloe Chaidez"},
	{"063012ktnA5", "Kitten", "2010-06-30", "Rock", "The Control Group", "Cut It Out", "EP",
		"Chad Anderson;Chloe Chaidez"},

	{"082812ktnA1", "Kitten", "2012-08-28", "Pop", "Atlantic", "Kill The Light", "LP",
		"Chad Anderson;Chloe Chaidez;Nicholas Johns"},
	{"082812ktnA2", "Kitten", "2012-08-28", "Pop", "Atlantic", "Kill The Light", "LP",
		"Chad Anderson;Chloe Chaidez"},
	{"082812ktnA3", "Kitten", "2012-08-28", "Pop", "Atlantic", "Kill The Light", "LP",
		"Chad Anderson;Chloe Chaidez"},
	{"082812ktnA4", "Kitten", "2012-08-28", "Pop", "Atlantic", "Yesterday", "LP",
		"Chad Anderson;Chloe Chaidez"},
	{"082812ktnA5", "Kitten", "2012-08-28", "Pop", "Atlantic", "Yesterday", "LP",
		"Chad Anderson;Chloe Chaidez;Nicholas Johns"},
	{"082812ktnA6", "Kitten", "2012-08-28", "Pop", "Atlantic", "Yesterday", "LP",
		"Chad Anderson;Chloe Chaidez"},

	{"093012ktnA1", "Kitten", "2013-09-30", "Electronic;Pop", "Free", "Cut It Out Remixes", "Single",
		"Chad Anderson;Chloe Chaidez"},
	{"093012ktnA2", "Kitten", "2013-09-30", "Electronic;Pop", "Free", "Cut It Out Remixes", "Single",
		"Chad Anderson;Chloe Chaidez"},
	{"093012ktnA3", "Kitten", "2013-09-30", "Electronic;Pop", "Free", "Cut It Out Remixes", "Single",
		"Chad Anderson;Chloe Chaidez;Nicholas Johns"},
	{"093012ktnA4", "Kitten", "2013-09-30", "Electronic;Pop", "Free", "Cut It Out Remixes", "Single",
		"Chad Anderson;Chloe Chaidez"},
	{"093012ktnA5", "Kitten", "2012-09-16", "Electronic;Pop", "Free", "Cut It Out/Sugar", "Single",
		"Chad Anderson;Chloe Chaidez"},
	{"093012ktnA6", "Kitten", "2012-09-16", "Electronic;Pop", "Free", "Cut It Out/Sugar", "Single",
		"Chad Anderson;Chloe Chaidez"},
	{"093012ktnA7", "Kitten", "2012-09-16", "Electronic;Pop", "Free", "Cut It Out/Sugar", "Single",
		"Chad Anderson;Chloe Chaidez"},
	{"093012ktnA8", "Kitten", "2012-09-16", "Electronic;Pop", "", "Cut It Out/Sugar", "Single",
		""},
}

// MusicTable returns the dense 22-track × 7-field source table that
// Figure 1 explodes.
func MusicTable() assoc.Table {
	t := assoc.Table{
		Fields: []string{"Artist", "Date", "Genre", "Label", "Release", "Type", "Writer"},
	}
	for _, r := range musicRows {
		t.Rows = append(t.Rows, r.key)
		t.Cells = append(t.Cells, []string{
			r.artist, r.date, r.genre, r.label, r.release, r.typ, r.writers,
		})
	}
	return t
}

// MusicIncidence returns E, the exploded sparse incidence view of
// Figure 1: 22 track rows × 31 "field|value" columns, every entry 1.
func MusicIncidence() *assoc.Array[float64] {
	e, err := assoc.Explode(MusicTable(), assoc.ExplodeOptions{})
	if err != nil {
		panic("dataset: music table invalid: " + err.Error()) // static data
	}
	return e
}

// MusicE1E2 returns the Figure-2 sub-arrays: E1 = E(:, 'Genre|*') and
// E2 = E(:, 'Writer|*').
func MusicE1E2() (e1, e2 *assoc.Array[float64]) {
	e := MusicIncidence()
	e1, err := e.SubRefExpr(":", "Genre|A : Genre|Z")
	if err != nil {
		panic(err)
	}
	e2, err = e.SubRefExpr(":", "Writer|A : Writer|Z")
	if err != nil {
		panic(err)
	}
	return e1, e2
}

// MusicE1Weighted returns Figure 4's re-weighted E1: non-zero values 1
// in Genre|Electronic, 2 in Genre|Pop, and 3 in Genre|Rock.
func MusicE1Weighted() *assoc.Array[float64] {
	e1, _ := MusicE1E2()
	return e1.Map(func(row, col string, v float64) float64 {
		switch col {
		case GenrePop:
			return 2
		case GenreRock:
			return 3
		default:
			return 1
		}
	})
}

// figureRow builds the triples of one expected adjacency row, in
// sorted writer order so the fixture bytes are identical across runs.
func figureRow(genre string, vals map[string]float64) []assoc.Triple[float64] {
	writers := make([]string, 0, len(vals))
	for writer := range vals {
		writers = append(writers, writer)
	}
	sort.Strings(writers)
	ts := make([]assoc.Triple[float64], 0, len(writers))
	for _, writer := range writers {
		ts = append(ts, assoc.Triple[float64]{Row: genre, Col: writer, Val: vals[writer]})
	}
	return ts
}

// uniformFigure builds the expected array with one constant value per
// genre row over the common pattern (Electronic connects to all five
// writers; Pop and Rock connect to Chad, Chloe and Nicholas).
func uniformFigure(elec, pop, rock float64) *assoc.Array[float64] {
	var ts []assoc.Triple[float64]
	ts = append(ts, figureRow(GenreElectronic, map[string]float64{
		WriterBarrett: elec, WriterChad: elec, WriterChloe: elec, WriterJulian: elec, WriterNicholas: elec,
	})...)
	ts = append(ts, figureRow(GenrePop, map[string]float64{
		WriterChad: pop, WriterChloe: pop, WriterNicholas: pop,
	})...)
	ts = append(ts, figureRow(GenreRock, map[string]float64{
		WriterChad: rock, WriterChloe: rock, WriterNicholas: rock,
	})...)
	return assoc.FromTriples(ts, nil)
}

// plusTimesFigure3 is the +.* panel shared by Figures 3 and 5's
// Electronic row: the edge-count correlation.
func plusTimesExpected(popScale, rockScale float64) *assoc.Array[float64] {
	var ts []assoc.Triple[float64]
	ts = append(ts, figureRow(GenreElectronic, map[string]float64{
		WriterBarrett: 1, WriterChad: 7, WriterChloe: 7, WriterJulian: 2, WriterNicholas: 1,
	})...)
	ts = append(ts, figureRow(GenrePop, map[string]float64{
		WriterChad: 13 * popScale, WriterChloe: 13 * popScale, WriterNicholas: 3 * popScale,
	})...)
	ts = append(ts, figureRow(GenreRock, map[string]float64{
		WriterChad: 6 * rockScale, WriterChloe: 6 * rockScale, WriterNicholas: 1 * rockScale,
	})...)
	return assoc.FromTriples(ts, nil)
}

// Figure3Expected returns the paper's Figure 3 adjacency arrays, keyed
// by operator-pair name: E1ᵀ ⊕.⊗ E2 with all incidence values 1.
func Figure3Expected() map[string]*assoc.Array[float64] {
	return map[string]*assoc.Array[float64]{
		"+.*":     plusTimesExpected(1, 1),
		"max.*":   uniformFigure(1, 1, 1),
		"min.*":   uniformFigure(1, 1, 1),
		"max.+":   uniformFigure(2, 2, 2),
		"min.+":   uniformFigure(2, 2, 2),
		"max.min": uniformFigure(1, 1, 1),
		"min.max": uniformFigure(1, 1, 1),
	}
}

// Figure5Expected returns the paper's Figure 5 adjacency arrays, keyed
// by operator-pair name: E1ᵀ ⊕.⊗ E2 with E1 re-weighted per Figure 4.
func Figure5Expected() map[string]*assoc.Array[float64] {
	return map[string]*assoc.Array[float64]{
		"+.*":     plusTimesExpected(2, 3),
		"max.*":   uniformFigure(1, 2, 3),
		"min.*":   uniformFigure(1, 2, 3),
		"max.+":   uniformFigure(2, 3, 4),
		"min.+":   uniformFigure(2, 3, 4),
		"max.min": uniformFigure(1, 1, 1),
		"min.max": uniformFigure(1, 2, 3),
	}
}

// Figure1RowDegrees returns the per-track nonzero counts visible in the
// paper's Figure 1 raster, used to validate the reconstruction.
func Figure1RowDegrees() map[string]int {
	return map[string]int{
		"031013ktnA1": 10,
		"053013ktnA1": 9, "053013ktnA2": 7,
		"063012ktnA1": 8, "063012ktnA2": 8, "063012ktnA3": 8, "063012ktnA4": 8, "063012ktnA5": 8,
		"082812ktnA1": 9, "082812ktnA2": 8, "082812ktnA3": 8, "082812ktnA4": 8, "082812ktnA5": 9, "082812ktnA6": 8,
		"093012ktnA1": 9, "093012ktnA2": 9, "093012ktnA3": 10, "093012ktnA4": 9,
		"093012ktnA5": 9, "093012ktnA6": 9, "093012ktnA7": 9, "093012ktnA8": 6,
	}
}

// Figure1Columns returns the 31 exploded column keys of Figure 1 in
// sorted order.
func Figure1Columns() []string {
	return []string{
		"Artist|Bandayde", "Artist|Kastle", "Artist|Kitten",
		"Date|2010-06-30", "Date|2012-08-28", "Date|2012-09-16",
		"Date|2013-05-30", "Date|2013-09-30", "Date|2013-10-03",
		GenreElectronic, GenrePop, GenreRock,
		"Label|Atlantic", "Label|Elektra Records", "Label|Free", "Label|The Control Group",
		"Release|Cut It Out", "Release|Cut It Out Remixes", "Release|Cut It Out/Sugar",
		"Release|Japanese Eyes", "Release|Kill The Light", "Release|Like A Stranger", "Release|Yesterday",
		"Type|EP", "Type|LP", "Type|Single",
		WriterBarrett, WriterChad, WriterChloe, WriterJulian, WriterNicholas,
	}
}
