package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
)

func TestSyntheticTableShape(t *testing.T) {
	spec := DefaultSyntheticSpec(200)
	tab := SyntheticTable(rand.New(rand.NewSource(1)), spec)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 200 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Fields) != 5 {
		t.Fatalf("fields = %v", tab.Fields)
	}
	// Fields must be sorted for deterministic explode output.
	for i := 1; i < len(tab.Fields); i++ {
		if tab.Fields[i-1] >= tab.Fields[i] {
			t.Error("fields not sorted")
		}
	}
}

func TestSyntheticTableDeterministic(t *testing.T) {
	spec := DefaultSyntheticSpec(50)
	a := SyntheticTable(rand.New(rand.NewSource(7)), spec)
	b := SyntheticTable(rand.New(rand.NewSource(7)), spec)
	for i := range a.Cells {
		for j := range a.Cells[i] {
			if a.Cells[i][j] != b.Cells[i][j] {
				t.Fatal("same seed produced different tables")
			}
		}
	}
}

func TestSyntheticTableZipfSkew(t *testing.T) {
	spec := SyntheticTableSpec{
		Records:    2000,
		Fields:     map[string]int{"Genre": 8},
		AbsentProb: 0,
	}
	tab := SyntheticTable(rand.New(rand.NewSource(3)), spec)
	counts := map[string]int{}
	for _, row := range tab.Cells {
		counts[row[0]]++
	}
	// Value 0 has weight 1/1, value 7 weight 1/8: expect heavy skew.
	if counts["Genre000"] < 3*counts["Genre007"] {
		t.Errorf("Zipf skew too flat: %v", counts)
	}
}

func TestSyntheticPipelineEndToEnd(t *testing.T) {
	tab := SyntheticTable(rand.New(rand.NewSource(5)), DefaultSyntheticSpec(300))
	e, err := assoc.Explode(tab, assoc.ExplodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.NNZ() == 0 {
		t.Fatal("explode produced nothing")
	}
	// Every exploded column belongs to a declared field.
	for i := 0; i < e.ColKeys().Len(); i++ {
		ck := e.ColKeys().Key(i)
		field, _, ok := strings.Cut(ck, "|")
		if !ok {
			t.Fatalf("column %q has no separator", ck)
		}
		found := false
		for _, f := range tab.Fields {
			if f == field {
				found = true
			}
		}
		if !found {
			t.Fatalf("column %q references unknown field", ck)
		}
	}
	// The Figure-3 style correlation at scale: genres × writers.
	e1, err := e.SubRefExpr(":", "Genre|*")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e.SubRefExpr(":", "Writer|*")
	if err != nil {
		t.Fatal(err)
	}
	a, err := assoc.Correlate(e1, e2, semiring.PlusTimes(), assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() == 0 {
		t.Error("scaled correlation produced an empty array")
	}
	// Sanity: total co-occurrence mass equals Σ_rows |genres|·|writers|.
	wantTotal := 0.0
	for i := 0; i < e1.RowKeys().Len(); i++ {
		rk := e1.RowKeys().Key(i)
		wantTotal += float64(e1.RowDegrees()[rk] * e2.RowDegrees()[rk])
	}
	gotTotal, _ := assoc.ReduceAll(a, func(x, y float64) float64 { return x + y })
	if gotTotal != wantTotal {
		t.Errorf("correlation mass = %v, want %v", gotTotal, wantTotal)
	}
}
