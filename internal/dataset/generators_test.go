package dataset

import (
	"math/rand"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/graph"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func TestErdosRenyiDeterministic(t *testing.T) {
	g1 := ErdosRenyi(rand.New(rand.NewSource(9)), 20, 0.1)
	g2 := ErdosRenyi(rand.New(rand.NewSource(9)), 20, 0.1)
	if g1.NumEdges() != g2.NumEdges() {
		t.Error("same seed produced different graphs")
	}
	g3 := ErdosRenyi(rand.New(rand.NewSource(10)), 20, 0.1)
	if g1.NumEdges() == g3.NumEdges() && g1.String() == g3.String() {
		t.Log("different seeds produced equal edge counts (possible, not an error)")
	}
}

func TestErdosRenyiNeverEmpty(t *testing.T) {
	g := ErdosRenyi(rand.New(rand.NewSource(1)), 5, 0)
	if g.NumEdges() == 0 {
		t.Error("generator must keep graphs non-degenerate")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	n, p := 50, 0.2
	g := ErdosRenyi(rand.New(rand.NewSource(4)), n, p)
	want := float64(n*n) * p
	got := float64(g.NumEdges())
	if got < want*0.6 || got > want*1.4 {
		t.Errorf("edge count %v far from expectation %v", got, want)
	}
}

func TestRMATShapeAndSkew(t *testing.T) {
	g := RMAT(rand.New(rand.NewSource(2)), 8, 8) // 256 vertices, 2048 edges
	if g.NumEdges() != 8*256 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.Vertices().Len() > 256 {
		t.Error("vertex keys exceed 2^scale")
	}
	// Power-law skew: the busiest source should far exceed the mean.
	counts := map[string]int{}
	for _, e := range g.Edges() {
		counts[e.Src]++
	}
	maxDeg := 0
	for _, c := range counts {
		if c > maxDeg {
			maxDeg = c
		}
	}
	mean := float64(g.NumEdges()) / float64(len(counts))
	if float64(maxDeg) < 3*mean {
		t.Errorf("R-MAT skew too flat: max=%d mean=%.1f", maxDeg, mean)
	}
}

func TestBipartiteSidesDisjoint(t *testing.T) {
	g := Bipartite(rand.New(rand.NewSource(3)), 10, 15, 40)
	if g.NumEdges() != 40 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	for i := 0; i < g.OutVertices().Len(); i++ {
		if k := g.OutVertices().Key(i); k[0] != 'l' {
			t.Errorf("source %q not on the left side", k)
		}
	}
	for i := 0; i < g.InVertices().Len(); i++ {
		if k := g.InVertices().Key(i); k[0] != 'r' {
			t.Errorf("target %q not on the right side", k)
		}
	}
}

func TestMultiEdgeParallelism(t *testing.T) {
	g := MultiEdge(rand.New(rand.NewSource(8)), 5, 30, 4)
	maxPar := 0
	for _, e := range g.Edges() {
		if n := len(g.EdgesBetween(e.Src, e.Dst)); n > maxPar {
			maxPar = n
		}
	}
	if maxPar < 2 {
		t.Error("MultiEdge should produce parallel edges")
	}
}

// Theorem II.1 forward direction across every generator family: this is
// experiment E6's inner loop.
func TestVerifyConstructionAcrossGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	gs := []*graph.Graph{
		ErdosRenyi(r, 24, 0.08),
		RMAT(r, 5, 4),
		Bipartite(r, 12, 9, 50),
		MultiEdge(r, 8, 25, 3),
	}
	for gi, g := range gs {
		for _, ops := range semiring.Figure3Pairs() {
			if err := graph.VerifyConstruction(g, ops, graph.Weights[float64]{}); err != nil {
				t.Errorf("generator %d under %s: %v", gi, ops.Name, err)
			}
		}
		if err := graph.VerifyReverse(g, semiring.PlusTimes(), graph.Weights[float64]{}); err != nil {
			t.Errorf("generator %d reverse: %v", gi, err)
		}
	}
}

func TestDocCorpusSharedWords(t *testing.T) {
	corpus := DocCorpus()
	if len(corpus) < 4 {
		t.Fatal("corpus too small to exercise structure")
	}
	e := SharedWordIncidence(corpus)
	// Diagonal entries are full vocabularies.
	for _, d := range corpus {
		if v, ok := e.At(d.Name, d.Name); !ok || !v.Equal(d.Words) {
			t.Errorf("E(%s,%s) = %v, want full vocabulary", d.Name, d.Name, v)
		}
	}
	// Symmetry.
	e.Iterate(func(r, c string, v value.Set) {
		back, ok := e.At(c, r)
		if !ok || !back.Equal(v) {
			t.Errorf("E not symmetric at (%s,%s)", r, c)
		}
	})
}

// Section III end-to-end: EᵀE under ∪.∩ lists the words shared by each
// document pair, even though the power-set algebra violates the
// zero-product condition in general — the structure of E avoids every
// violating multiplication.
func TestSectionIIIUnionIntersectCorrelation(t *testing.T) {
	corpus := DocCorpus()
	e := SharedWordIncidence(corpus)
	universe := value.Set{}
	for _, d := range corpus {
		universe = universe.Union(d.Words)
	}
	ops := semiring.PowerSet(universe)
	got, err := assoc.Correlate(e, e, ops, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := SharedWordsExpected(corpus)
	if !got.Equal(want, func(a, b value.Set) bool { return a.Equal(b) }) {
		t.Errorf("∪.∩ correlation mismatch\ngot:\n%s\nwant:\n%s",
			assoc.Format(got, value.Set.String), assoc.Format(want, value.Set.String))
	}
	// And concretely: every entry is the intersection of the two
	// documents' vocabularies.
	byName := map[string]value.Set{}
	for _, d := range corpus {
		byName[d.Name] = d.Words
	}
	got.Iterate(func(x, y string, v value.Set) {
		if !v.Equal(byName[x].Intersect(byName[y])) {
			t.Errorf("A(%s,%s) = %v, want %v", x, y, v, byName[x].Intersect(byName[y]))
		}
	})
}
