package dataset

import (
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func eqF(a, b float64) bool { return value.Float64Equal(a, b) }

func TestMusicTableShape(t *testing.T) {
	tab := MusicTable()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 22 {
		t.Fatalf("track count = %d, want 22", len(tab.Rows))
	}
	if len(tab.Fields) != 7 {
		t.Fatalf("field count = %d, want 7", len(tab.Fields))
	}
}

func TestMusicIncidenceMatchesFigure1Structure(t *testing.T) {
	e := MusicIncidence()
	if e.RowKeys().Len() != 22 {
		t.Errorf("rows = %d, want 22", e.RowKeys().Len())
	}
	// Exactly the 31 columns of Figure 1.
	want := Figure1Columns()
	if e.ColKeys().Len() != len(want) {
		t.Fatalf("cols = %d, want %d: %v", e.ColKeys().Len(), len(want), e.ColKeys().Keys())
	}
	for i, k := range want {
		if e.ColKeys().Key(i) != k {
			t.Errorf("column %d = %q, want %q", i, e.ColKeys().Key(i), k)
		}
	}
	// Every value is 1 ("the new value is usually 1").
	e.Iterate(func(r, c string, v float64) {
		if v != 1 {
			t.Errorf("E(%s,%s) = %v, want 1", r, c, v)
		}
	})
	// Row degrees match the Figure 1 raster exactly.
	deg := e.RowDegrees()
	for row, want := range Figure1RowDegrees() {
		if deg[row] != want {
			t.Errorf("row %s degree = %d, want %d", row, deg[row], want)
		}
	}
}

func TestMusicE1MatchesFigure2(t *testing.T) {
	e1, _ := MusicE1E2()
	if e1.ColKeys().Len() != 3 {
		t.Fatalf("E1 cols = %v", e1.ColKeys().Keys())
	}
	// Genre assignments recovered from Figures 2 and 4.
	wantGenres := map[string][]string{
		"031013ktnA1": {GenreRock},
		"053013ktnA1": {GenreElectronic},
		"053013ktnA2": {GenreElectronic},
	}
	for i := 1; i <= 5; i++ {
		wantGenres["063012ktnA"+string(rune('0'+i))] = []string{GenreRock}
	}
	for i := 1; i <= 6; i++ {
		wantGenres["082812ktnA"+string(rune('0'+i))] = []string{GenrePop}
	}
	for i := 1; i <= 8; i++ {
		wantGenres["093012ktnA"+string(rune('0'+i))] = []string{GenreElectronic, GenrePop}
	}
	for row, genres := range wantGenres {
		for _, gcol := range genres {
			if v, ok := e1.At(row, gcol); !ok || v != 1 {
				t.Errorf("E1(%s,%s) = %v,%v; want 1", row, gcol, v, ok)
			}
		}
		if deg := e1.RowDegrees()[row]; deg != len(genres) {
			t.Errorf("E1 row %s degree = %d, want %d", row, deg, len(genres))
		}
	}
}

func TestMusicE2MatchesFigure2(t *testing.T) {
	_, e2 := MusicE1E2()
	if e2.ColKeys().Len() != 5 {
		t.Fatalf("E2 cols = %v", e2.ColKeys().Keys())
	}
	wantDegrees := map[string]int{
		"031013ktnA1": 3,
		"053013ktnA1": 2, "053013ktnA2": 1,
		"063012ktnA1": 2, "063012ktnA2": 2, "063012ktnA3": 2, "063012ktnA4": 2, "063012ktnA5": 2,
		"082812ktnA1": 3, "082812ktnA2": 2, "082812ktnA3": 2, "082812ktnA4": 2, "082812ktnA5": 3, "082812ktnA6": 2,
		"093012ktnA1": 2, "093012ktnA2": 2, "093012ktnA3": 3, "093012ktnA4": 2,
		"093012ktnA5": 2, "093012ktnA6": 2, "093012ktnA7": 2, "093012ktnA8": 0,
	}
	deg := e2.RowDegrees()
	for row, want := range wantDegrees {
		if deg[row] != want {
			t.Errorf("E2 row %s degree = %d, want %d", row, deg[row], want)
		}
	}
	// Spot checks from the figure.
	if _, ok := e2.At("053013ktnA1", WriterBarrett); !ok {
		t.Error("Barrett Rich should write 053013ktnA1")
	}
	if _, ok := e2.At("053013ktnA2", WriterJulian); !ok {
		t.Error("Julian Chaidez should write 053013ktnA2")
	}
	if _, ok := e2.At("093012ktnA3", WriterNicholas); !ok {
		t.Error("Nicholas Johns should write 093012ktnA3")
	}
}

func TestMusicE1WeightedMatchesFigure4(t *testing.T) {
	w := MusicE1Weighted()
	e1, _ := MusicE1E2()
	if !assoc.SamePattern(w, e1) {
		t.Fatal("Figure 4 re-weighting must not change the pattern")
	}
	w.Iterate(func(row, col string, v float64) {
		want := map[string]float64{GenreElectronic: 1, GenrePop: 2, GenreRock: 3}[col]
		if v != want {
			t.Errorf("weighted E1(%s,%s) = %v, want %v", row, col, v, want)
		}
	})
}

// The headline reproduction: E1ᵀ ⊕.⊗ E2 equals the paper's Figure 3
// arrays for all seven operator pairs.
func TestFigure3Reproduction(t *testing.T) {
	e1, e2 := MusicE1E2()
	expected := Figure3Expected()
	for _, ops := range semiring.Figure3Pairs() {
		got, err := assoc.Correlate(e1, e2, ops, assoc.MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := expected[ops.Name]
		if !got.Equal(want, eqF) {
			t.Errorf("%s: Figure 3 mismatch\ngot:\n%s\nwant:\n%s", ops.Name,
				assoc.Format(got, value.FormatFloat), assoc.Format(want, value.FormatFloat))
		}
	}
}

// And Figure 5: same correlation with the Figure-4 re-weighted E1.
func TestFigure5Reproduction(t *testing.T) {
	e1 := MusicE1Weighted()
	_, e2 := MusicE1E2()
	expected := Figure5Expected()
	for _, ops := range semiring.Figure3Pairs() {
		got, err := assoc.Correlate(e1, e2, ops, assoc.MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := expected[ops.Name]
		if !got.Equal(want, eqF) {
			t.Errorf("%s: Figure 5 mismatch\ngot:\n%s\nwant:\n%s", ops.Name,
				assoc.Format(got, value.FormatFloat), assoc.Format(want, value.FormatFloat))
		}
	}
}

// The paper: "the pattern of edges … is generally preserved for various
// semirings" — all seven Figure 3 products share one pattern.
func TestFigure3PatternInvariance(t *testing.T) {
	e1, e2 := MusicE1E2()
	var first *assoc.Array[float64]
	for _, ops := range semiring.Figure3Pairs() {
		got, err := assoc.Correlate(e1, e2, ops, assoc.MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = got
			continue
		}
		if !assoc.SamePattern(first, got) {
			t.Errorf("%s changed the edge pattern", ops.Name)
		}
	}
}
