package dataset

import (
	"fmt"
	"math/rand"

	"adjarray/internal/graph"
)

// Synthetic graph workloads for the theorem and scaling experiments.
// All generators are deterministic given the *rand.Rand seed, so
// experiments are reproducible run to run.

// vkey formats a vertex key with fixed width so key order matches
// numeric order.
func vkey(i int) string { return fmt.Sprintf("v%06d", i) }

// ekey formats an edge key with fixed width.
func ekey(i int) string { return fmt.Sprintf("e%08d", i) }

// ErdosRenyi samples a G(n, p) directed graph (self-loops allowed,
// at most one edge per ordered pair).
func ErdosRenyi(r *rand.Rand, n int, p float64) *graph.Graph {
	var edges []graph.Edge
	id := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Float64() < p {
				edges = append(edges, graph.Edge{Key: ekey(id), Src: vkey(i), Dst: vkey(j)})
				id++
			}
		}
	}
	if len(edges) == 0 { // keep generated graphs non-degenerate
		edges = append(edges, graph.Edge{Key: ekey(0), Src: vkey(0), Dst: vkey(n - 1)})
	}
	g, err := graph.New(edges)
	if err != nil {
		panic("dataset: generator produced invalid graph: " + err.Error())
	}
	return g
}

// RMAT samples a power-law (Graph500-style recursive-matrix) multigraph
// with 2^scale vertices and edgeFactor·2^scale edges using the standard
// partition probabilities a=0.57, b=0.19, c=0.19, d=0.05. Duplicate
// (src,dst) pairs are kept as genuinely parallel edges — exactly the
// multi-edge structure whose aggregation the ⊕ operator governs.
func RMAT(r *rand.Rand, scale, edgeFactor int) *graph.Graph {
	n := 1 << scale
	m := edgeFactor * n
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([]graph.Edge, 0, m)
	for e := 0; e < m; e++ {
		src, dst := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			p := r.Float64()
			switch {
			case p < a: // upper-left
			case p < a+b: // upper-right
				dst += bit
			case p < a+b+c: // lower-left
				src += bit
			default: // lower-right
				src += bit
				dst += bit
			}
		}
		edges = append(edges, graph.Edge{Key: ekey(e), Src: vkey(src), Dst: vkey(dst)})
	}
	g, err := graph.New(edges)
	if err != nil {
		panic("dataset: generator produced invalid graph: " + err.Error())
	}
	return g
}

// Bipartite samples m edges from nLeft source vertices ("l…") to nRight
// target vertices ("r…") — the incidence shape of exploded database
// tables like Figure 1 (records × field values).
func Bipartite(r *rand.Rand, nLeft, nRight, m int) *graph.Graph {
	edges := make([]graph.Edge, m)
	for e := 0; e < m; e++ {
		edges[e] = graph.Edge{
			Key: ekey(e),
			Src: fmt.Sprintf("l%06d", r.Intn(nLeft)),
			Dst: fmt.Sprintf("r%06d", r.Intn(nRight)),
		}
	}
	g, err := graph.New(edges)
	if err != nil {
		panic("dataset: generator produced invalid graph: " + err.Error())
	}
	return g
}

// MultiEdge samples a graph of n vertices where every sampled ordered
// pair carries between 1 and maxMult parallel edges — the stress
// workload for ⊕ aggregation semantics (Lemma II.2 territory).
func MultiEdge(r *rand.Rand, n, pairs, maxMult int) *graph.Graph {
	var edges []graph.Edge
	id := 0
	for p := 0; p < pairs; p++ {
		src, dst := vkey(r.Intn(n)), vkey(r.Intn(n))
		mult := 1 + r.Intn(maxMult)
		for c := 0; c < mult; c++ {
			edges = append(edges, graph.Edge{Key: ekey(id), Src: src, Dst: dst})
			id++
		}
	}
	g, err := graph.New(edges)
	if err != nil {
		panic("dataset: generator produced invalid graph: " + err.Error())
	}
	return g
}
