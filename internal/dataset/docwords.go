package dataset

import (
	"adjarray/internal/assoc"
	"adjarray/internal/value"
)

// Section III's structured set-valued workload: an undirected incidence
// array E over documents whose entry E(i,j) is the set of words shared
// by documents i and j. Multiplying EᵀE with ⊕ = ∪ and ⊗ = ∩ never
// intersects disjoint non-empty sets — the structure guarantees every
// exercised product of non-empty sets is non-empty, so the zero-product
// condition can be dropped and the result still lists the words shared
// by each document pair.

// Doc is a named document with its word set.
type Doc struct {
	Name  string
	Words value.Set
}

// DocCorpus returns a small deterministic corpus with overlapping
// vocabulary across technical topics.
func DocCorpus() []Doc {
	return []Doc{
		{"doc-arrays", value.NewSet("array", "adjacency", "incidence", "graph", "semiring")},
		{"doc-graphblas", value.NewSet("graph", "semiring", "sparse", "matrix", "kernel")},
		{"doc-hpc", value.NewSet("sparse", "matrix", "parallel", "kernel", "performance")},
		{"doc-db", value.NewSet("database", "table", "array", "incidence", "schema")},
		{"doc-ml", value.NewSet("model", "matrix", "training", "performance")},
	}
}

// SharedWordIncidence builds the Section III incidence array: for every
// ordered document pair (i, j) with a non-empty shared vocabulary,
// E(i, j) = Words(i) ∩ Words(j). The construction makes the structural
// guarantee hold: any word in E(i,j) and E(m,n) belongs to all four
// documents' vocabularies and therefore to E(i,n) and E(m,j).
func SharedWordIncidence(corpus []Doc) *assoc.Array[value.Set] {
	b := assoc.NewBuilder[value.Set](nil)
	for _, d1 := range corpus {
		for _, d2 := range corpus {
			shared := d1.Words.Intersect(d2.Words)
			if !shared.IsEmpty() {
				b.Set(d1.Name, d2.Name, shared)
			}
		}
	}
	return b.Build()
}

// SharedWordsExpected computes the ground truth for the ∪.∩ correlation
// EᵀE directly from the corpus: entry (x, y) is the union over k of
// E(k,x) ∩ E(k,y) — which, by the structural property, is Words(x) ∩
// Words(y) whenever some document k shares vocabulary with both.
func SharedWordsExpected(corpus []Doc) *assoc.Array[value.Set] {
	byName := make(map[string]value.Set, len(corpus))
	for _, d := range corpus {
		byName[d.Name] = d.Words
	}
	e := SharedWordIncidence(corpus)
	b := assoc.NewBuilder[value.Set](nil)
	for _, x := range corpus {
		for _, y := range corpus {
			var acc value.Set
			for _, k := range corpus {
				ekx, okX := e.At(k.Name, x.Name)
				eky, okY := e.At(k.Name, y.Name)
				if okX && okY {
					acc = acc.Union(ekx.Intersect(eky))
				}
			}
			if !acc.IsEmpty() {
				b.Set(x.Name, y.Name, acc)
			}
		}
	}
	return b.Build()
}
