package dataset

import (
	"fmt"
	"math/rand"

	"adjarray/internal/assoc"
)

// SyntheticTableSpec parameterizes a scaled-up music-style metadata
// table for end-to-end pipeline experiments (explode → subref →
// correlate at sizes the 22-track original cannot exercise).
type SyntheticTableSpec struct {
	// Records is the number of rows.
	Records int
	// Fields maps field name → cardinality of its value pool. Values
	// are drawn Zipf-like: value v has weight 1/(v+1), mimicking the
	// skewed field-value distributions of real metadata (a few big
	// genres, many rare writers).
	Fields map[string]int
	// MultiValue maps field name → maximum number of values per cell
	// (≥ 1); e.g. tracks have several writers. Cells draw 1..Max values.
	MultiValue map[string]int
	// AbsentProb is the probability a cell is empty.
	AbsentProb float64
}

// SyntheticTable generates a deterministic (per rand source) dense
// table from the spec, field columns in sorted spec order.
func SyntheticTable(r *rand.Rand, spec SyntheticTableSpec) assoc.Table {
	var fields []string
	for f := range spec.Fields {
		fields = append(fields, f)
	}
	sortStrings(fields)

	t := assoc.Table{Fields: fields}
	for i := 0; i < spec.Records; i++ {
		t.Rows = append(t.Rows, fmt.Sprintf("rec%07d", i))
		row := make([]string, len(fields))
		for j, f := range fields {
			if r.Float64() < spec.AbsentProb {
				continue
			}
			card := spec.Fields[f]
			maxVals := spec.MultiValue[f]
			if maxVals < 1 {
				maxVals = 1
			}
			n := 1 + r.Intn(maxVals)
			cell := ""
			seen := map[int]bool{}
			for k := 0; k < n; k++ {
				v := zipfDraw(r, card)
				if seen[v] {
					continue
				}
				seen[v] = true
				if cell != "" {
					cell += ";"
				}
				cell += fmt.Sprintf("%s%03d", f, v)
			}
			row[j] = cell
		}
		t.Cells = append(t.Cells, row)
	}
	return t
}

// zipfDraw samples 0..card-1 with weight ∝ 1/(v+1) via inverse CDF on
// the harmonic partial sums (cheap approximation adequate for workload
// shaping).
func zipfDraw(r *rand.Rand, card int) int {
	if card <= 1 {
		return 0
	}
	// H(card) ≈ ln(card) + γ; walk the CDF.
	target := r.Float64() * harmonic(card)
	acc := 0.0
	for v := 0; v < card; v++ {
		acc += 1 / float64(v+1)
		if acc >= target {
			return v
		}
	}
	return card - 1
}

func harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// DefaultSyntheticSpec mirrors the music table's shape at parameterized
// scale: few genres, many writers, multi-valued writer cells.
func DefaultSyntheticSpec(records int) SyntheticTableSpec {
	return SyntheticTableSpec{
		Records: records,
		Fields: map[string]int{
			"Artist": records/20 + 3,
			"Genre":  8,
			"Label":  24,
			"Writer": records/10 + 8,
			"Type":   4,
		},
		MultiValue: map[string]int{"Writer": 3, "Artist": 2},
		AbsentProb: 0.05,
	}
}
