// Package render produces the aligned text views of associative arrays
// used by the figure-regeneration tools, echoing the D4M sparse display
// style of the paper's Figures 1–5 (row keys down the left, column keys
// across the top, blanks for structural zeros). It also provides TSV
// triple I/O for the CLIs.
package render

import (
	"fmt"
	"strings"
)

// Grid renders a labelled matrix. cell(i, j) returns the text for the
// (i,j) entry, "" for a structural zero. Column widths auto-size to the
// wider of the header and the longest cell.
func Grid(rowKeys, colKeys []string, cell func(i, j int) string) string {
	rowW := 0
	for _, k := range rowKeys {
		if len(k) > rowW {
			rowW = len(k)
		}
	}
	colW := make([]int, len(colKeys))
	cells := make([][]string, len(rowKeys))
	for j, k := range colKeys {
		colW[j] = len(k)
	}
	for i := range rowKeys {
		cells[i] = make([]string, len(colKeys))
		for j := range colKeys {
			s := cell(i, j)
			cells[i][j] = s
			if len(s) > colW[j] {
				colW[j] = len(s)
			}
		}
	}
	var b strings.Builder
	// Header.
	fmt.Fprintf(&b, "%-*s", rowW, "")
	for j, k := range colKeys {
		fmt.Fprintf(&b, " %*s", colW[j], k)
	}
	b.WriteByte('\n')
	// Body.
	for i, rk := range rowKeys {
		fmt.Fprintf(&b, "%-*s", rowW, rk)
		for j := range colKeys {
			fmt.Fprintf(&b, " %*s", colW[j], cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Columns renders a simple two-or-more column report with left-aligned
// cells, used by the semiring classification table.
func Columns(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for j, h := range header {
		width[j] = len(h)
	}
	for _, r := range rows {
		for j, c := range r {
			if j < len(width) && len(c) > width[j] {
				width[j] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			if j < len(width) {
				fmt.Fprintf(&b, "%-*s", width[j], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for j := range header {
		sep[j] = strings.Repeat("-", width[j])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
