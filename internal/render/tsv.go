package render

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// TripleRecord is one (row, column, value) line of a TSV triple file,
// the interchange format of the adjbuild CLI (and the textual analogue
// of a D4M/Accumulo table dump).
type TripleRecord struct {
	Row, Col, Val string
}

// WriteTriples emits records as tab-separated "row\tcol\tval" lines.
// Fields must not contain tabs, newlines, or carriage returns (CR would
// be silently altered by line-oriented readers).
func WriteTriples(w io.Writer, recs []TripleRecord) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if strings.ContainsAny(r.Row+r.Col+r.Val, "\t\n\r") {
			return fmt.Errorf("render: field contains tab, newline, or carriage return: %+v", r)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", r.Row, r.Col, r.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTriples parses tab-separated triples, skipping blank lines and
// lines starting with '#'.
func ReadTriples(r io.Reader) ([]TripleRecord, error) {
	var out []TripleRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.ContainsRune(line, '\r') {
			return nil, fmt.Errorf("render: line %d: carriage return in field (CRLF input? strip \\r first)", lineNo)
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("render: line %d: want 3 tab-separated fields, got %d", lineNo, len(parts))
		}
		out = append(out, TripleRecord{Row: parts[0], Col: parts[1], Val: parts[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
