package render

import (
	"bytes"
	"strings"
	"testing"
)

func TestGridAlignment(t *testing.T) {
	out := Grid(
		[]string{"row1", "r2"},
		[]string{"long-column", "c"},
		func(i, j int) string {
			if i == 0 && j == 0 {
				return "7"
			}
			if i == 1 && j == 1 {
				return "13"
			}
			return ""
		},
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	// All lines are equally wide (fixed column layout).
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("ragged grid:\n%s", out)
	}
	if !strings.Contains(lines[0], "long-column") {
		t.Error("header missing")
	}
	if !strings.Contains(lines[1], "7") || strings.Contains(lines[1], "13") {
		t.Error("cell placement wrong")
	}
	// Blank cells render as spaces, not as "0".
	if strings.Contains(lines[2], "0") {
		t.Error("structural zero rendered")
	}
}

func TestGridEmpty(t *testing.T) {
	out := Grid(nil, nil, func(i, j int) string { return "x" })
	if !strings.HasSuffix(out, "\n") {
		t.Error("even the empty grid ends with a newline header line")
	}
}

func TestGridCellWiderThanHeader(t *testing.T) {
	out := Grid([]string{"r"}, []string{"c"}, func(i, j int) string { return "wide-value" })
	if !strings.Contains(out, "wide-value") {
		t.Error("wide cell truncated")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines[0]) != len(lines[1]) {
		t.Error("column did not grow to fit the cell")
	}
}

func TestColumns(t *testing.T) {
	out := Columns(
		[]string{"name", "value"},
		[][]string{{"alpha", "1"}, {"b", "222"}},
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Errorf("separator line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "alpha") {
		t.Errorf("row line = %q", lines[2])
	}
}

func TestColumnsRaggedRow(t *testing.T) {
	// Extra cells beyond the header width are appended rather than
	// dropped, and short rows are fine.
	out := Columns([]string{"a"}, [][]string{{"x", "extra"}, {"y"}})
	if !strings.Contains(out, "extra") {
		t.Error("extra cell dropped")
	}
}

func TestWriteReadTriplesRoundTrip(t *testing.T) {
	recs := []TripleRecord{
		{Row: "r1", Col: "c1", Val: "1"},
		{Row: "r 2", Col: "c|2", Val: "-Inf"},
	}
	var buf bytes.Buffer
	if err := WriteTriples(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip %d records", len(back))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, back[i], recs[i])
		}
	}
}

func TestWriteTriplesRejectsTabs(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTriples(&buf, []TripleRecord{{Row: "a\tb", Col: "c", Val: "1"}})
	if err == nil {
		t.Error("tab in field accepted")
	}
	err = WriteTriples(&buf, []TripleRecord{{Row: "a", Col: "c", Val: "1\n2"}})
	if err == nil {
		t.Error("newline in field accepted")
	}
}

func TestReadTriplesSkipsCommentsAndBlanks(t *testing.T) {
	in := strings.NewReader("# comment\n\nr\tc\tv\n")
	recs, err := ReadTriples(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Row != "r" {
		t.Errorf("records = %v", recs)
	}
}

func TestReadTriplesRejectsMalformed(t *testing.T) {
	if _, err := ReadTriples(strings.NewReader("only\ttwo\n")); err == nil {
		t.Error("two-field line accepted")
	}
	if _, err := ReadTriples(strings.NewReader("a\tb\tc\td\n")); err == nil {
		t.Error("four-field line accepted")
	}
}
