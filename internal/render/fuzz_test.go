package render

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTriples hardens the TSV triple parser: arbitrary input must
// never panic, and accepted records must round-trip through
// WriteTriples when they are writable (no tabs/newlines inside fields,
// which ReadTriples by construction guarantees).
func FuzzReadTriples(f *testing.F) {
	for _, seed := range []string{
		"r\tc\tv\n", "# comment\n\nr\tc\tv\n", "a\tb\n", "a\tb\tc\td\n",
		"", "\t\t\n", "r\tc\tv", strings.Repeat("x\ty\tz\n", 50),
		"\xff\xfe\t\x00\tv\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadTriples(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTriples(&buf, recs); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		back, err := ReadTriples(&buf)
		if err != nil {
			t.Fatalf("serialized records failed to parse: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(back))
		}
		for i := range recs {
			if recs[i] != back[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, recs[i], back[i])
			}
		}
	})
}

// FuzzReadTable hardens the dense-table parser the same way.
func FuzzReadTable(f *testing.F) {
	for _, seed := range []string{
		"k\tA\tB\nr\tx\ty\n", "k\tA\nr\n", "k\tA\nr\tx\ty\n", "", "#\n",
		"k\tA\nr1\tv\nr2\t\n", "\tA\n\t\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		td, err := ReadTable(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(td.Rows) != len(td.Cells) {
			t.Fatal("rows/cells length mismatch")
		}
		for i, row := range td.Cells {
			if len(row) != len(td.Fields) {
				t.Fatalf("row %d has %d cells, want %d", i, len(row), len(td.Fields))
			}
		}
	})
}
