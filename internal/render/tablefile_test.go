package render

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadTable(t *testing.T) {
	in := strings.NewReader(`# music sample
track	Genre	Writer
t1	Rock	Ann;Bob
t2	Pop
`)
	td, err := ReadTable(in)
	if err != nil {
		t.Fatal(err)
	}
	if td.RowHeader != "track" || len(td.Fields) != 2 || len(td.Rows) != 2 {
		t.Fatalf("table = %+v", td)
	}
	if td.Cells[0][1] != "Ann;Bob" {
		t.Errorf("multi-value cell = %q", td.Cells[0][1])
	}
	if td.Cells[1][1] != "" {
		t.Errorf("empty cell = %q", td.Cells[1][1])
	}
}

func TestReadTableErrors(t *testing.T) {
	if _, err := ReadTable(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTable(strings.NewReader("onlykey\n")); err == nil {
		t.Error("fieldless header accepted")
	}
	if _, err := ReadTable(strings.NewReader("k\tF\nrow\ta\tb\n")); err == nil {
		t.Error("wide row accepted")
	}
}

func TestWriteReadTableRoundTrip(t *testing.T) {
	td := TableData{
		RowHeader: "id",
		Fields:    []string{"A", "B"},
		Rows:      []string{"r1", "r2"},
		Cells:     [][]string{{"x", "y;z"}, {"", "w"}},
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, td); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.RowHeader != td.RowHeader || len(back.Rows) != 2 || back.Cells[0][1] != "y;z" || back.Cells[1][0] != "" {
		t.Errorf("round trip = %+v", back)
	}
}

func TestWriteTableValidates(t *testing.T) {
	var buf bytes.Buffer
	bad := TableData{Fields: []string{"A"}, Rows: []string{"r"}, Cells: [][]string{{"a", "b"}}}
	if err := WriteTable(&buf, bad); err == nil {
		t.Error("ragged row accepted")
	}
	tabby := TableData{Fields: []string{"A"}, Rows: []string{"r"}, Cells: [][]string{{"a\tb"}}}
	if err := WriteTable(&buf, tabby); err == nil {
		t.Error("tab in cell accepted")
	}
	empty := TableData{Fields: []string{"A"}}
	if err := WriteTable(&buf, empty); err != nil {
		t.Errorf("empty-body table should be writable: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "key\t") {
		t.Error("default row header not applied")
	}
}
