package render

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Dense-table TSV I/O: the spreadsheet shape that Figure 1 starts from.
// Format: first line is "<rowKeyHeader>\tField1\tField2...", following
// lines are "rowKey\tcell1\tcell2...". Empty cells mean absent; cells
// may hold multiple ';'-separated values. Lines starting with '#' and
// blank lines are skipped.

// TableData is the I/O-level mirror of assoc.Table (kept separate so
// render does not import assoc).
type TableData struct {
	RowHeader string
	Fields    []string
	Rows      []string
	Cells     [][]string
}

// ReadTable parses a dense TSV table.
func ReadTable(r io.Reader) (TableData, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var t TableData
	headerSeen := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if !headerSeen {
			if len(parts) < 2 {
				return t, fmt.Errorf("render: line %d: header needs a row-key column and at least one field", lineNo)
			}
			t.RowHeader = parts[0]
			t.Fields = parts[1:]
			headerSeen = true
			continue
		}
		if len(parts) > len(t.Fields)+1 {
			return t, fmt.Errorf("render: line %d: %d cells, want at most %d", lineNo, len(parts)-1, len(t.Fields))
		}
		// Trailing empty cells may be omitted (editors often strip the
		// trailing tabs); pad them back.
		for len(parts) < len(t.Fields)+1 {
			parts = append(parts, "")
		}
		t.Rows = append(t.Rows, parts[0])
		t.Cells = append(t.Cells, parts[1:])
	}
	if err := sc.Err(); err != nil {
		return t, err
	}
	if !headerSeen {
		return t, fmt.Errorf("render: empty table")
	}
	return t, nil
}

// WriteTable emits a dense TSV table.
func WriteTable(w io.Writer, t TableData) error {
	bw := bufio.NewWriter(w)
	header := t.RowHeader
	if header == "" {
		header = "key"
	}
	if _, err := fmt.Fprintf(bw, "%s\t%s\n", header, strings.Join(t.Fields, "\t")); err != nil {
		return err
	}
	for i, row := range t.Rows {
		if len(t.Cells[i]) != len(t.Fields) {
			return fmt.Errorf("render: row %d has %d cells, want %d", i, len(t.Cells[i]), len(t.Fields))
		}
		for _, c := range append([]string{row}, t.Cells[i]...) {
			if strings.ContainsAny(c, "\t\n") {
				return fmt.Errorf("render: cell %q contains tab or newline", c)
			}
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", row, strings.Join(t.Cells[i], "\t")); err != nil {
			return err
		}
	}
	return bw.Flush()
}
