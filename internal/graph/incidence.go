package graph

import (
	"fmt"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
)

// Weights assigns the incidence-array entries for an edge. Definition
// I.4 only requires the entries to be non-zero; the values themselves
// are data (edge weights, timestamps, labels…).
type Weights[V any] struct {
	// Out gives Eout(k, src); nil means the algebra's One.
	Out func(e Edge) V
	// In gives Ein(k, dst); nil means the algebra's One.
	In func(e Edge) V
}

// Incidence builds the source and target incidence arrays of g
// (Definition I.4): Eout : K×Kout and Ein : K×Kin, with entry values
// chosen by w (both default to ops.One — the unweighted case of
// Figure 1 where "the new value is usually 1").
//
// Incidence returns an error if any weight equals ops.Zero: a zero
// entry would contradict Definition I.4's "non-zero iff incident".
func Incidence[V any](g *Graph, ops semiring.Ops[V], w Weights[V]) (eout, ein *assoc.Array[V], err error) {
	outW := w.Out
	if outW == nil {
		outW = func(Edge) V { return ops.One }
	}
	inW := w.In
	if inW == nil {
		inW = func(Edge) V { return ops.One }
	}
	outT := make([]assoc.Triple[V], 0, g.NumEdges())
	inT := make([]assoc.Triple[V], 0, g.NumEdges())
	for _, e := range g.Edges() {
		ov, iv := outW(e), inW(e)
		if ops.IsZero(ov) {
			return nil, nil, fmt.Errorf("graph: out-weight of edge %q is the zero element", e.Key)
		}
		if ops.IsZero(iv) {
			return nil, nil, fmt.Errorf("graph: in-weight of edge %q is the zero element", e.Key)
		}
		outT = append(outT, assoc.Triple[V]{Row: e.Key, Col: e.Src, Val: ov})
		inT = append(inT, assoc.Triple[V]{Row: e.Key, Col: e.Dst, Val: iv})
	}
	return assoc.FromTriples(outT, nil), assoc.FromTriples(inT, nil), nil
}

// GraphFromIncidence reconstructs the multigraph encoded by a pair of
// incidence arrays: each shared row key k with a non-zero entry in
// column a of eout and column b of ein contributes the edge k : a → b.
// Rows with no source or no target entry are rejected (they encode no
// edge), as are rows with multiple sources or targets (not a simple
// directed edge).
func GraphFromIncidence[V any](eout, ein *assoc.Array[V]) (*Graph, error) {
	if !eout.RowKeys().Equal(ein.RowKeys()) {
		return nil, fmt.Errorf("graph: incidence arrays disagree on edge keys")
	}
	src := make(map[string]string)
	dst := make(map[string]string)
	var dup string
	eout.Iterate(func(k, a string, _ V) {
		if _, ok := src[k]; ok {
			dup = "source of " + k
		}
		src[k] = a
	})
	ein.Iterate(func(k, b string, _ V) {
		if _, ok := dst[k]; ok {
			dup = "target of " + k
		}
		dst[k] = b
	})
	if dup != "" {
		return nil, fmt.Errorf("graph: incidence row has multiple entries: %s", dup)
	}
	edges := make([]Edge, 0, eout.RowKeys().Len())
	for i := 0; i < eout.RowKeys().Len(); i++ {
		k := eout.RowKeys().Key(i)
		s, okS := src[k]
		d, okD := dst[k]
		if !okS || !okD {
			return nil, fmt.Errorf("graph: edge %q lacks a source or target entry", k)
		}
		edges = append(edges, Edge{Key: k, Src: s, Dst: d})
	}
	return New(edges)
}

// Adjacency constructs A = Eoutᵀ ⊕.⊗ Ein with the production sparse
// kernel (Theorem II.1's premise guarantees this equals the dense
// Definition I.3 product for compliant algebras). opt tunes the kernel.
func Adjacency[V any](eout, ein *assoc.Array[V], ops semiring.Ops[V], opt assoc.MulOptions) (*assoc.Array[V], error) {
	return assoc.Correlate(eout, ein, ops, opt)
}

// AdjacencyDense constructs A by the literal Definition I.3 fold over
// every edge key, materializing structural zeros. It is the ground
// truth for the theorem experiments: for non-compliant algebras its
// result may differ from Adjacency — and from being an adjacency array.
func AdjacencyDense[V any](eout, ein *assoc.Array[V], ops semiring.Ops[V]) (*assoc.Array[V], error) {
	return assoc.MulDense(eout.Transpose(), ein, ops)
}

// ReverseAdjacency constructs Einᵀ ⊕.⊗ Eout, which by Corollary III.1
// is an adjacency array of the reverse graph whenever the Theorem II.1
// conditions hold.
func ReverseAdjacency[V any](eout, ein *assoc.Array[V], ops semiring.Ops[V], opt assoc.MulOptions) (*assoc.Array[V], error) {
	return assoc.Correlate(ein, eout, ops, opt)
}

// BuildAdjacency is the one-call convenience: incidence extraction
// followed by sparse construction, returning (A, Eout, Ein).
func BuildAdjacency[V any](g *Graph, ops semiring.Ops[V], w Weights[V], opt assoc.MulOptions) (a, eout, ein *assoc.Array[V], err error) {
	eout, ein, err = Incidence(g, ops, w)
	if err != nil {
		return nil, nil, nil, err
	}
	a, err = Adjacency(eout, ein, ops, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	return a, eout, ein, nil
}

// IsAdjacencyOf checks Definition I.5: a is an adjacency array of g iff
// a's row keys are Kout, its column keys are Kin, and a(x,y) is
// non-zero exactly when g has an edge x → y. Stored entries equal to
// the zero element count as absent (isZero decides). A nil return means
// a is a valid adjacency array; otherwise the error describes the first
// violation.
func IsAdjacencyOf[V any](a *assoc.Array[V], g *Graph, isZero func(V) bool) error {
	if !a.RowKeys().Equal(g.OutVertices()) {
		return fmt.Errorf("graph: adjacency row keys %v differ from Kout %v", a.RowKeys(), g.OutVertices())
	}
	if !a.ColKeys().Equal(g.InVertices()) {
		return fmt.Errorf("graph: adjacency col keys %v differ from Kin %v", a.ColKeys(), g.InVertices())
	}
	var violation error
	a.Iterate(func(x, y string, v V) {
		if violation != nil {
			return
		}
		if !isZero(v) && !g.HasEdge(x, y) {
			violation = fmt.Errorf("graph: A(%s,%s) non-zero but no edge %s→%s exists", x, y, x, y)
		}
	})
	if violation != nil {
		return violation
	}
	for _, e := range g.Edges() {
		v, ok := a.At(e.Src, e.Dst)
		if !ok || isZero(v) {
			return fmt.Errorf("graph: edge %s→%s (key %s) exists but A(%s,%s) is zero",
				e.Src, e.Dst, e.Key, e.Src, e.Dst)
		}
	}
	return nil
}
