// Package graph implements the paper's graph layer: directed
// multigraphs with totally-ordered vertex and edge keys, their source
// and target incidence arrays (Definition I.4), adjacency-array
// construction A = Eoutᵀ ⊕.⊗ Ein, adjacency validation (Definition I.5),
// reverse graphs (Corollary III.1), and the constructive Theorem II.1
// machinery: for every failed algebraic condition, the gadget graph from
// Lemmas II.2–II.4 whose incidence product is provably not an adjacency
// array.
package graph

import (
	"fmt"
	"sort"

	"adjarray/internal/keys"
)

// Edge is one directed edge: Key identifies the edge (K is totally
// ordered, so keys are strings), Src ∈ Kout, Dst ∈ Kin.
type Edge struct {
	Key, Src, Dst string
}

// Graph is a finite directed multigraph G = (Kout ∪ Kin, K). Multiple
// edges between the same vertex pair and self-loops are allowed — the
// paper's lemma gadgets depend on both. Immutable after construction.
type Graph struct {
	edges    []Edge
	edgeKeys *keys.Set
	outVerts *keys.Set // Kout: sources of edges
	inVerts  *keys.Set // Kin: targets of edges
	pairs    map[[2]string][]int
}

// New validates and builds a Graph. Edge keys must be unique and
// non-empty; vertex keys must be non-empty.
func New(edges []Edge) (*Graph, error) {
	seen := make(map[string]bool, len(edges))
	var eks, outs, ins []string
	pairs := make(map[[2]string][]int, len(edges))
	es := make([]Edge, len(edges))
	copy(es, edges)
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	for i, e := range es {
		if e.Key == "" || e.Src == "" || e.Dst == "" {
			return nil, fmt.Errorf("graph: edge %d has empty key/src/dst: %+v", i, e)
		}
		if seen[e.Key] {
			return nil, fmt.Errorf("graph: duplicate edge key %q", e.Key)
		}
		seen[e.Key] = true
		eks = append(eks, e.Key)
		outs = append(outs, e.Src)
		ins = append(ins, e.Dst)
		p := [2]string{e.Src, e.Dst}
		pairs[p] = append(pairs[p], i)
	}
	return &Graph{
		edges:    es,
		edgeKeys: keys.New(eks...),
		outVerts: keys.New(outs...),
		inVerts:  keys.New(ins...),
		pairs:    pairs,
	}, nil
}

// MustNew is New panicking on error, for statically valid literals.
func MustNew(edges []Edge) *Graph {
	g, err := New(edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Edges returns the edges in edge-key order (a copy).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// NumEdges returns |K|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// EdgeKeys returns the totally ordered edge key set K.
func (g *Graph) EdgeKeys() *keys.Set { return g.edgeKeys }

// OutVertices returns Kout, the set of vertices that source some edge.
func (g *Graph) OutVertices() *keys.Set { return g.outVerts }

// InVertices returns Kin, the set of vertices that receive some edge.
func (g *Graph) InVertices() *keys.Set { return g.inVerts }

// Vertices returns the full vertex set Kout ∪ Kin.
func (g *Graph) Vertices() *keys.Set { return g.outVerts.Union(g.inVerts) }

// HasEdge reports whether at least one edge runs src → dst.
func (g *Graph) HasEdge(src, dst string) bool {
	return len(g.pairs[[2]string{src, dst}]) > 0
}

// EdgesBetween returns the edges src → dst in edge-key order.
func (g *Graph) EdgesBetween(src, dst string) []Edge {
	idx := g.pairs[[2]string{src, dst}]
	out := make([]Edge, len(idx))
	for n, i := range idx {
		out[n] = g.edges[i]
	}
	return out
}

// Reverse returns G with every edge direction flipped (same edge and
// vertex keys) — the Ḡ of Corollary III.1.
func (g *Graph) Reverse() *Graph {
	rev := make([]Edge, len(g.edges))
	for i, e := range g.edges {
		rev[i] = Edge{Key: e.Key, Src: e.Dst, Dst: e.Src}
	}
	out, err := New(rev)
	if err != nil {
		panic(fmt.Sprintf("graph: reversing a valid graph failed: %v", err)) // unreachable
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{%d edges, %d out-vertices, %d in-vertices}",
		len(g.edges), g.outVerts.Len(), g.inVerts.Len())
}
