package graph

import (
	"strings"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
)

func triangle() *Graph {
	return MustNew([]Edge{
		{Key: "e1", Src: "a", Dst: "b"},
		{Key: "e2", Src: "b", Dst: "c"},
		{Key: "e3", Src: "c", Dst: "a"},
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Edge{{Key: "", Src: "a", Dst: "b"}}); err == nil {
		t.Error("empty edge key accepted")
	}
	if _, err := New([]Edge{{Key: "k", Src: "", Dst: "b"}}); err == nil {
		t.Error("empty src accepted")
	}
	if _, err := New([]Edge{{Key: "k", Src: "a", Dst: ""}}); err == nil {
		t.Error("empty dst accepted")
	}
	if _, err := New([]Edge{
		{Key: "k", Src: "a", Dst: "b"},
		{Key: "k", Src: "c", Dst: "d"},
	}); err == nil {
		t.Error("duplicate edge key accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid input")
		}
	}()
	MustNew([]Edge{{Key: "", Src: "", Dst: ""}})
}

func TestGraphAccessors(t *testing.T) {
	g := triangle()
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.Vertices().Len() != 3 || g.OutVertices().Len() != 3 || g.InVertices().Len() != 3 {
		t.Error("vertex sets wrong")
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Error("HasEdge wrong")
	}
	if es := g.EdgesBetween("a", "b"); len(es) != 1 || es[0].Key != "e1" {
		t.Errorf("EdgesBetween = %v", es)
	}
	if len(g.EdgesBetween("a", "c")) != 0 {
		t.Error("phantom edges")
	}
	if !strings.Contains(g.String(), "3 edges") {
		t.Errorf("String = %q", g.String())
	}
	// Edges are returned (and processed) in edge-key order regardless of
	// construction order.
	g2 := MustNew([]Edge{
		{Key: "z", Src: "a", Dst: "b"},
		{Key: "a", Src: "c", Dst: "d"},
	})
	if es := g2.Edges(); es[0].Key != "a" || es[1].Key != "z" {
		t.Errorf("edges not in key order: %v", es)
	}
}

func TestPartialVertexSets(t *testing.T) {
	// b is a sink: appears in Kin only. a is a source: Kout only.
	g := MustNew([]Edge{{Key: "k", Src: "a", Dst: "b"}})
	if g.OutVertices().Len() != 1 || g.OutVertices().Key(0) != "a" {
		t.Error("Kout wrong")
	}
	if g.InVertices().Len() != 1 || g.InVertices().Key(0) != "b" {
		t.Error("Kin wrong")
	}
	if g.Vertices().Len() != 2 {
		t.Error("Kout ∪ Kin wrong")
	}
}

func TestReverse(t *testing.T) {
	g := triangle()
	r := g.Reverse()
	if !r.HasEdge("b", "a") || r.HasEdge("a", "b") {
		t.Error("Reverse did not flip edges")
	}
	if !r.Reverse().EdgeKeys().Equal(g.EdgeKeys()) {
		t.Error("double reverse changed edge keys")
	}
	if !r.OutVertices().Equal(g.InVertices()) || !r.InVertices().Equal(g.OutVertices()) {
		t.Error("Reverse did not swap Kout/Kin")
	}
}

func TestIncidenceDefinition(t *testing.T) {
	g := triangle()
	ops := semiring.PlusTimes()
	eout, ein, err := Incidence(g, ops, Weights[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	// Definition I.4: Eout(k,a) ≠ 0 iff edge k leaves a.
	for _, e := range g.Edges() {
		if v, ok := eout.At(e.Key, e.Src); !ok || v != 1 {
			t.Errorf("Eout(%s,%s) = %v,%v", e.Key, e.Src, v, ok)
		}
		if v, ok := ein.At(e.Key, e.Dst); !ok || v != 1 {
			t.Errorf("Ein(%s,%s) = %v,%v", e.Key, e.Dst, v, ok)
		}
	}
	if eout.NNZ() != 3 || ein.NNZ() != 3 {
		t.Error("incidence arrays must have exactly one entry per edge")
	}
	if !eout.RowKeys().Equal(g.EdgeKeys()) {
		t.Error("Eout rows must be K")
	}
}

func TestIncidenceCustomWeightsAndZeroRejection(t *testing.T) {
	g := triangle()
	ops := semiring.PlusTimes()
	eout, _, err := Incidence(g, ops, Weights[float64]{
		Out: func(e Edge) float64 { return 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := eout.At("e1", "a"); v != 2 {
		t.Errorf("custom out weight = %v", v)
	}
	_, _, err = Incidence(g, ops, Weights[float64]{
		Out: func(e Edge) float64 { return 0 },
	})
	if err == nil {
		t.Error("zero out-weight accepted")
	}
	_, _, err = Incidence(g, ops, Weights[float64]{
		In: func(e Edge) float64 { return 0 },
	})
	if err == nil {
		t.Error("zero in-weight accepted")
	}
}

func TestGraphFromIncidenceRoundTrip(t *testing.T) {
	g := triangle()
	eout, ein, err := Incidence(g, semiring.PlusTimes(), Weights[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := GraphFromIncidence(eout, ein)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 3 || !back.HasEdge("a", "b") || !back.HasEdge("c", "a") {
		t.Error("round trip lost edges")
	}
}

func TestGraphFromIncidenceRejectsMalformed(t *testing.T) {
	eout := assoc.FromTriples([]assoc.Triple[float64]{{Row: "k1", Col: "a", Val: 1}}, nil)
	einWrongKeys := assoc.FromTriples([]assoc.Triple[float64]{{Row: "k2", Col: "b", Val: 1}}, nil)
	if _, err := GraphFromIncidence(eout, einWrongKeys); err == nil {
		t.Error("mismatched edge key sets accepted")
	}
	einDouble := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "k1", Col: "b", Val: 1}, {Row: "k1", Col: "c", Val: 1},
	}, nil)
	if _, err := GraphFromIncidence(eout, einDouble); err == nil {
		t.Error("row with two targets accepted")
	}
	// Ein lacking a target for k1 entirely: build via explicit key sets.
	einEmptyRow := eout.SubRef(nil, nil).Prune(func(float64) bool { return true })
	if _, err := GraphFromIncidence(eout, einEmptyRow); err == nil {
		t.Error("row with no target accepted")
	}
}

func TestAdjacencyOfTriangle(t *testing.T) {
	g := triangle()
	a, eout, ein, err := BuildAdjacency(g, semiring.PlusTimes(), Weights[float64]{}, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if eout.NNZ() != 3 || ein.NNZ() != 3 {
		t.Error("incidence arrays wrong")
	}
	if err := IsAdjacencyOf(a, g, func(v float64) bool { return v == 0 }); err != nil {
		t.Errorf("triangle adjacency invalid: %v", err)
	}
	if v, _ := a.At("a", "b"); v != 1 {
		t.Errorf("A(a,b) = %v", v)
	}
}

func TestAdjacencyMultiEdgeAggregation(t *testing.T) {
	g := MustNew([]Edge{
		{Key: "k1", Src: "a", Dst: "b"},
		{Key: "k2", Src: "a", Dst: "b"},
		{Key: "k3", Src: "a", Dst: "b"},
	})
	a, _, _, err := BuildAdjacency(g, semiring.PlusTimes(), Weights[float64]{}, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.At("a", "b"); v != 3 {
		t.Errorf("+.* should aggregate 3 parallel edges, got %v", v)
	}
	// With default weights the entries are the algebra's One (+Inf for
	// max.min); the paper's figures store the numeric weight 1 instead.
	one := func(Edge) float64 { return 1 }
	a2, _, _, err := BuildAdjacency(g, semiring.MaxMin(), Weights[float64]{Out: one, In: one}, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a2.At("a", "b"); v != 1 {
		t.Errorf("max.min should select, got %v", v)
	}
}

func TestIsAdjacencyOfDetectsViolations(t *testing.T) {
	g := triangle()
	isZero := func(v float64) bool { return v == 0 }

	// Wrong key sets.
	wrongKeys := assoc.FromTriples([]assoc.Triple[float64]{{Row: "x", Col: "b", Val: 1}}, nil)
	if err := IsAdjacencyOf(wrongKeys, g, isZero); err == nil {
		t.Error("wrong key sets accepted")
	}

	// Spurious entry.
	spurious := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "a", Col: "b", Val: 1}, {Row: "b", Col: "c", Val: 1},
		{Row: "c", Col: "a", Val: 1}, {Row: "a", Col: "c", Val: 5},
	}, nil)
	if err := IsAdjacencyOf(spurious, g, isZero); err == nil || !strings.Contains(err.Error(), "non-zero but no edge") {
		t.Errorf("spurious entry not detected: %v", err)
	}

	// Missing entry.
	missing := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "a", Col: "b", Val: 1}, {Row: "b", Col: "c", Val: 1},
	}, nil)
	// Reindex onto the full vertex sets so only the entry is missing.
	missingFull, err := missing.Reindex(g.OutVertices(), g.InVertices())
	if err != nil {
		t.Fatal(err)
	}
	if err := IsAdjacencyOf(missingFull, g, isZero); err == nil || !strings.Contains(err.Error(), "is zero") {
		t.Errorf("missing entry not detected: %v", err)
	}

	// Explicit zero entry counts as absent.
	withExplicitZero := spurious.Map(func(r, c string, v float64) float64 {
		if r == "a" && c == "c" {
			return 0
		}
		return v
	})
	if err := IsAdjacencyOf(withExplicitZero, g, isZero); err != nil {
		t.Errorf("explicit zero should count as absent: %v", err)
	}
}
