package graph

import (
	"adjarray/internal/assoc"
)

// The constructive gadgets of Lemmas II.2–II.4: tiny graphs witnessing
// that each Theorem II.1 condition is *necessary*. Each constructor
// returns the graph together with hand-built incidence arrays carrying
// the specific values the lemma's proof uses (so they bypass the
// Incidence weight plumbing, which would reject zero weights).

// GadgetParallelEdges is the Lemma II.2 gadget: edge set {k1, k2}, both
// from a to b, with Eout(k1,a) = v, Eout(k2,a) = w and Ein(ki,b) = one.
// If v ⊕ w = 0 with v, w non-zero (a zero-sum), the product EoutᵀEin has
// a structural zero at (a,b) despite the edges — not an adjacency array.
func GadgetParallelEdges[V any](v, w, one V) (*Graph, *assoc.Array[V], *assoc.Array[V]) {
	g := MustNew([]Edge{
		{Key: "k1", Src: "a", Dst: "b"},
		{Key: "k2", Src: "a", Dst: "b"},
	})
	eout := assoc.FromTriples([]assoc.Triple[V]{
		{Row: "k1", Col: "a", Val: v},
		{Row: "k2", Col: "a", Val: w},
	}, nil)
	ein := assoc.FromTriples([]assoc.Triple[V]{
		{Row: "k1", Col: "b", Val: one},
		{Row: "k2", Col: "b", Val: one},
	}, nil)
	return g, eout, ein
}

// GadgetSelfLoop is the Lemma II.3 gadget: a single self-loop k at
// vertex a with Eout(k,a) = v and Ein(k,a) = w. If v ⊗ w = 0 with v, w
// non-zero (zero divisors), the product has a structural zero at (a,a)
// despite the loop.
func GadgetSelfLoop[V any](v, w V) (*Graph, *assoc.Array[V], *assoc.Array[V]) {
	g := MustNew([]Edge{{Key: "k", Src: "a", Dst: "a"}})
	eout := assoc.FromTriples([]assoc.Triple[V]{{Row: "k", Col: "a", Val: v}}, nil)
	ein := assoc.FromTriples([]assoc.Triple[V]{{Row: "k", Col: "a", Val: w}}, nil)
	return g, eout, ein
}

// GadgetTwoSelfLoops is the Lemma II.4 gadget: self-loops k1 at a and
// k2 at b, with Eout(k1,a) = Ein(k1,a) = v and Eout(k2,b) = Ein(k2,b)
// = v, all other entries zero. The Definition I.3 product at the
// off-diagonal pair (a,b) is (v ⊗ 0) ⊕ (0 ⊗ v); if 0 fails to
// annihilate, that entry can be non-zero although no edge a → b exists.
func GadgetTwoSelfLoops[V any](v V) (*Graph, *assoc.Array[V], *assoc.Array[V]) {
	g := MustNew([]Edge{
		{Key: "k1", Src: "a", Dst: "a"},
		{Key: "k2", Src: "b", Dst: "b"},
	})
	eout := assoc.FromTriples([]assoc.Triple[V]{
		{Row: "k1", Col: "a", Val: v},
		{Row: "k2", Col: "b", Val: v},
	}, nil)
	ein := assoc.FromTriples([]assoc.Triple[V]{
		{Row: "k1", Col: "a", Val: v},
		{Row: "k2", Col: "b", Val: v},
	}, nil)
	return g, eout, ein
}

// GadgetThreeSelfLoops extends Lemma II.4 to the corner case
// 0 ⊗ 0 ≠ 0 with v ⊗ 0 = 0 ⊗ v = 0 for non-zero v (possible in
// non-semiring algebras, where ⊗ is an arbitrary table). Two self-loops
// cannot expose it: the cross term (a,b) is (v⊗0) ⊕ (0⊗v) and never
// multiplies two structural zeros. With three disjoint self-loops at a,
// b, c, the Definition I.3 entry for (a,b) picks up the third edge's
// term Eout(k3,a) ⊗ Ein(k3,b) = 0 ⊗ 0, which a broken 0⊗0 turns into a
// spurious non-zero: a vertex pair with no edge but a non-zero entry.
func GadgetThreeSelfLoops[V any](v V) (*Graph, *assoc.Array[V], *assoc.Array[V]) {
	g := MustNew([]Edge{
		{Key: "k1", Src: "a", Dst: "a"},
		{Key: "k2", Src: "b", Dst: "b"},
		{Key: "k3", Src: "c", Dst: "c"},
	})
	ts := []assoc.Triple[V]{
		{Row: "k1", Col: "a", Val: v},
		{Row: "k2", Col: "b", Val: v},
		{Row: "k3", Col: "c", Val: v},
	}
	return g, assoc.FromTriples(ts, nil), assoc.FromTriples(ts, nil)
}
