package graph

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"adjarray/internal/semiring"
)

// randomalgebra_test.go — the theorem quantifies over ALL value sets
// with closed ⊕/⊗ and identities, not just the named semirings. These
// tests sample hundreds of random finite algebras (operation tables
// over {0..n-1} with forced identities, but otherwise arbitrary — in
// general non-associative, non-commutative, non-distributive) and check
// the full equivalence:
//
//	conditions hold on the domain
//	  ⇐⇒  no gadget violation exists
//	  ⇐⇒  construction is correct on random graphs (spot-checked).

// randomFiniteOps builds an operator pair over {0..n-1} with 0 as the
// ⊕-identity and 1 as the ⊗-identity; all other table entries are
// uniform random.
func randomFiniteOps(r *rand.Rand, n int) semiring.Ops[int64] {
	add := make([][]int64, n)
	mul := make([][]int64, n)
	for i := range add {
		add[i] = make([]int64, n)
		mul[i] = make([]int64, n)
		for j := range add[i] {
			add[i][j] = int64(r.Intn(n))
			mul[i][j] = int64(r.Intn(n))
		}
	}
	for v := 0; v < n; v++ {
		add[v][0], add[0][v] = int64(v), int64(v) // 0 is ⊕-identity
		mul[v][1], mul[1][v] = int64(v), int64(v) // 1 is ⊗-identity
	}
	return semiring.Ops[int64]{
		Name:  fmt.Sprintf("random-%d", n),
		Add:   func(a, b int64) int64 { return add[a][b] },
		Mul:   func(a, b int64) int64 { return mul[a][b] },
		Zero:  0,
		One:   1,
		Equal: func(a, b int64) bool { return a == b },
	}
}

func domain(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// The core equivalence: semiring.Check's three conditions hold exactly
// when FindViolation produces no gadget. Exhaustive over the finite
// domain, so this is a genuine decision procedure for each sampled
// algebra.
func TestRandomAlgebrasConditionGadgetEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(2017))
	compliant, violating := 0, 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + r.Intn(5) // domains of size 2..6
		ops := randomFiniteOps(r, n)
		sample := domain(n)
		rep := semiring.Check(ops, sample, nil)
		v := FindViolation(ops, sample)
		if rep.TheoremII1() {
			compliant++
			if v != nil {
				t.Fatalf("trial %d (n=%d): conditions hold but gadget violates: %s", trial, n, v)
			}
		} else {
			violating++
			if v == nil {
				t.Fatalf("trial %d (n=%d): conditions fail (%+v) but no gadget violation found",
					trial, n, firstFailure(rep))
			}
		}
	}
	// Sanity: the sample must include both classes or the test is vacuous.
	if compliant == 0 || violating == 0 {
		t.Fatalf("degenerate sample: %d compliant, %d violating", compliant, violating)
	}
	t.Logf("sampled algebras: %d compliant, %d violating", compliant, violating)
}

func firstFailure(r semiring.Report) semiring.Condition {
	for _, c := range []semiring.Condition{r.ZeroSumFree, r.NoZeroDivisors, r.Annihilator} {
		if !c.Holds {
			return c
		}
	}
	return semiring.Condition{}
}

// For compliant random algebras, construction must be correct on random
// multigraphs with arbitrary non-zero weights — the forward direction
// on algebras nobody hand-picked.
func TestRandomCompliantAlgebrasConstructCorrectly(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	verified := 0
	for trial := 0; trial < 300 && verified < 25; trial++ {
		n := 2 + r.Intn(5)
		ops := randomFiniteOps(r, n)
		sample := domain(n)
		if !semiring.Check(ops, sample, nil).TheoremII1() {
			continue
		}
		verified++
		g := randomMultigraph(r, 6, 14)
		w := Weights[int64]{
			Out: func(e Edge) int64 { return 1 + int64(r.Intn(n-1)) }, // non-zero
			In:  func(e Edge) int64 { return 1 + int64(r.Intn(n-1)) },
		}
		if err := VerifyConstruction(g, ops, w); err != nil {
			t.Fatalf("trial %d (n=%d): compliant algebra failed construction: %v", trial, n, err)
		}
		if err := VerifyReverse(g, ops, w); err != nil {
			t.Fatalf("trial %d (n=%d): compliant algebra failed reverse corollary: %v", trial, n, err)
		}
	}
	if verified < 10 {
		t.Fatalf("too few compliant algebras sampled: %d", verified)
	}
	t.Logf("verified %d random compliant algebras on random multigraphs", verified)
}

// randomMultigraph samples a graph with self-loops and parallel edges.
func randomMultigraph(r *rand.Rand, nVerts, nEdges int) *Graph {
	edges := make([]Edge, nEdges)
	for i := range edges {
		edges[i] = Edge{
			Key: "e" + strconv.Itoa(i),
			Src: "v" + strconv.Itoa(r.Intn(nVerts)),
			Dst: "v" + strconv.Itoa(r.Intn(nVerts)),
		}
	}
	return MustNew(edges)
}

// For violating random algebras, the demonstrated gadget product must
// concretely break Definition I.5 — FindViolation's Detail is not just
// a claim; re-validate it independently here.
func TestRandomViolatingAlgebrasGadgetsAreGenuine(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	demonstrated := 0
	for trial := 0; trial < 300 && demonstrated < 25; trial++ {
		n := 2 + r.Intn(5)
		ops := randomFiniteOps(r, n)
		sample := domain(n)
		if semiring.Check(ops, sample, nil).TheoremII1() {
			continue
		}
		v := FindViolation(ops, sample)
		if v == nil {
			t.Fatalf("trial %d: violating algebra with no gadget", trial)
		}
		demonstrated++
		// Independent re-check: the carried product really is not an
		// adjacency array of the carried graph.
		if err := IsAdjacencyOf(v.Product, v.Graph, ops.IsZero); err == nil {
			t.Fatalf("trial %d: violation's product IS a valid adjacency array — bogus witness", trial)
		}
	}
	if demonstrated < 10 {
		t.Fatalf("too few violating algebras sampled: %d", demonstrated)
	}
	t.Logf("independently re-validated %d gadget violations", demonstrated)
}
