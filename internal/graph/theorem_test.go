package graph

import (
	"strconv"
	"strings"
	"testing"

	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

// ladder builds a deterministic multigraph with self-loops, parallel
// edges, sources, and sinks — the structural zoo the theorem quantifies
// over.
func ladder() *Graph {
	var edges []Edge
	add := func(k, s, d string) { edges = append(edges, Edge{Key: k, Src: s, Dst: d}) }
	for i := 0; i < 6; i++ {
		v := "v" + strconv.Itoa(i)
		w := "v" + strconv.Itoa((i+1)%6)
		add("e"+strconv.Itoa(i), v, w)
	}
	add("p1", "v0", "v1") // parallel with e0
	add("p2", "v0", "v1")
	add("loop", "v3", "v3")
	add("sink", "v2", "t") // t is a pure sink
	add("src", "s", "v4")  // s is a pure source
	return MustNew(edges)
}

func TestVerifyConstructionAllPaperPairs(t *testing.T) {
	g := ladder()
	for _, ops := range semiring.Figure3Pairs() {
		if err := VerifyConstruction(g, ops, Weights[float64]{}); err != nil {
			t.Errorf("%s: %v", ops.Name, err)
		}
	}
}

func TestVerifyConstructionWeighted(t *testing.T) {
	g := ladder()
	w := Weights[float64]{
		Out: func(e Edge) float64 { return float64(1 + len(e.Key)%3) },
		In:  func(e Edge) float64 { return float64(1 + len(e.Dst)%2) },
	}
	for _, name := range []string{"+.*", "max.min"} {
		e, _ := semiring.Lookup(name)
		if err := VerifyConstruction(g, e.Ops, w); err != nil {
			t.Errorf("%s weighted: %v", name, err)
		}
	}
	// Tropical pairs need weights that avoid their zero elements; the
	// defaults above are finite, so they work too.
	mp, _ := semiring.Lookup("max.+")
	if err := VerifyConstruction(g, mp.Ops, w); err != nil {
		t.Errorf("max.+ weighted: %v", err)
	}
}

func TestVerifyConstructionNonCommutativePair(t *testing.T) {
	// The paper: associativity/commutativity/distributivity are NOT
	// needed. first.* satisfies the three conditions and must pass.
	if err := VerifyConstruction(ladder(), semiring.LeftmostNonzero(), Weights[float64]{
		Out: func(e Edge) float64 { return float64(1 + len(e.Key)) },
	}); err != nil {
		t.Errorf("first.*: %v", err)
	}
}

func TestVerifyConstructionStringAlgebra(t *testing.T) {
	g := ladder()
	ops := semiring.StringMaxMin()
	err := VerifyConstruction(g, ops, Weights[string]{
		Out: func(e Edge) string { return "w" + e.Key },
		In:  func(e Edge) string { return "x" + e.Dst },
	})
	if err != nil {
		t.Errorf("smax.smin: %v", err)
	}
}

func TestVerifyReverseCorollary(t *testing.T) {
	g := ladder()
	for _, ops := range semiring.Figure3Pairs() {
		if err := VerifyReverse(g, ops, Weights[float64]{}); err != nil {
			t.Errorf("%s: %v", ops.Name, err)
		}
	}
}

func TestFindViolationCompliantPairsHaveNone(t *testing.T) {
	for _, name := range []string{"+.*", "max.*", "min.*", "max.+", "min.+", "max.min", "min.max", "first.*"} {
		e, _ := semiring.Lookup(name)
		if v := FindViolation(e.Ops, e.Sample); v != nil {
			t.Errorf("%s: unexpected violation %s", name, v)
		}
	}
}

func TestFindViolationRing(t *testing.T) {
	// Signed reals: zero-sum witnesses exist (5 ⊕ −5 = 0) → Lemma II.2.
	e, _ := semiring.Lookup("real+.real*")
	v := FindViolation(e.Ops, e.Sample)
	if v == nil {
		t.Fatal("ring should violate")
	}
	if v.Condition != "zero-sum-free" || v.Lemma != "II.2" {
		t.Errorf("violation = %s", v)
	}
	if !strings.Contains(v.Detail, "is zero") {
		t.Errorf("detail should report a missing adjacency entry: %s", v.Detail)
	}
	if v.Graph.NumEdges() != 2 {
		t.Error("Lemma II.2 gadget should have two parallel edges")
	}
}

func TestFindViolationZeroDivisors(t *testing.T) {
	// ℤ/6ℤ has zero-sum witnesses too, so to isolate Lemma II.3 use a
	// sample with no additive inverses but a zero product: {0, 2, 3}
	// in ℤ/6ℤ has 2+3=5≠0, 2+2=4, 3+3=0 — 3 is its own inverse, so use
	// {0, 2, 4}: 2+4=0... also bad. Use {0, 2, 3} minus the 3+3 case:
	// sample {0, 2}: 2+2=4≠0, 2⊗2=4≠0 — no witness. So craft a pair
	// with zero divisors only: min.* extended with a saturating cap.
	capMul := semiring.Ops[float64]{
		Name: "cap4.*",
		Add:  func(a, b float64) float64 { return a + b },
		// products ≥ 4 saturate to 0 — artificial zero divisors.
		Mul: func(a, b float64) float64 {
			p := a * b
			if p >= 4 {
				return 0
			}
			return p
		},
		Zero: 0, One: 1, Equal: value.Float64Equal,
	}
	v := FindViolation(capMul, []float64{0, 1, 2, 3})
	if v == nil {
		t.Fatal("cap4.* should violate no-zero-divisors")
	}
	if v.Condition != "no-zero-divisors" || v.Lemma != "II.3" {
		t.Errorf("violation = %s", v)
	}
	if v.Graph.NumEdges() != 1 || !v.Graph.HasEdge("a", "a") {
		t.Error("Lemma II.3 gadget should be a single self-loop")
	}
}

func TestFindViolationAnnihilator(t *testing.T) {
	e, _ := semiring.Lookup("max.+@0")
	v := FindViolation(e.Ops, e.Sample)
	if v == nil {
		t.Fatal("max.+@0 should violate the annihilator condition")
	}
	if v.Condition != "annihilator" || v.Lemma != "II.4" {
		t.Errorf("violation = %s", v)
	}
	if !strings.Contains(v.Detail, "non-zero but no edge") {
		t.Errorf("detail should report a spurious adjacency entry: %s", v.Detail)
	}
	// The spurious entry must be off-diagonal (a,b) with no a→b edge.
	if v.Product == nil {
		t.Fatal("violation should carry the offending product")
	}
	if _, ok := v.Product.At("a", "b"); !ok {
		if _, ok2 := v.Product.At("b", "a"); !ok2 {
			t.Error("expected a spurious off-diagonal entry in the Lemma II.4 product")
		}
	}
}

// The 0⊗0 corner of the annihilator condition: an algebra where every
// non-zero value annihilates correctly but 0 ⊗ 0 = 1. The paper's
// two-self-loop gadget (Lemma II.4) cannot expose this — with v = 0 its
// incidence arrays would be invalid — so FindViolation must fall back
// to the three-self-loop gadget, where the third edge contributes a
// structural 0⊗0 term to an edgeless vertex pair.
func TestFindViolationZeroTimesZeroCorner(t *testing.T) {
	ops := semiring.Ops[int64]{
		Name: "0x0-broken",
		Add: func(a, b int64) int64 { // max: zero-sum-free with identity 0
			if a > b {
				return a
			}
			return b
		},
		Mul: func(a, b int64) int64 {
			if a == 0 && b == 0 {
				return 1 // the deliberate hole
			}
			if a == 0 || b == 0 {
				return 0 // non-zero operands annihilate correctly
			}
			return a * b
		},
		Zero: 0, One: 1,
		Equal: func(a, b int64) bool { return a == b },
	}
	sample := []int64{0, 1, 2, 3}
	rep := semiring.Check(ops, sample, nil)
	if rep.Annihilator.Holds {
		t.Fatal("checker should flag 0⊗0 = 1")
	}
	if rep.ZeroSumFree.Holds != true || rep.NoZeroDivisors.Holds != true {
		t.Fatal("only the annihilator condition should fail in this algebra")
	}
	v := FindViolation(ops, sample)
	if v == nil {
		t.Fatal("no violation demonstrated for the 0⊗0 corner")
	}
	if v.Condition != "annihilator" || !strings.Contains(v.Lemma, "0⊗0") {
		t.Errorf("violation = %s, want the three-self-loop corner gadget", v)
	}
	if v.Graph.NumEdges() != 3 {
		t.Errorf("corner gadget should have 3 self-loops, has %d edges", v.Graph.NumEdges())
	}
	// Independent confirmation that the witness is genuine.
	if err := IsAdjacencyOf(v.Product, v.Graph, ops.IsZero); err == nil {
		t.Error("corner-gadget product is a valid adjacency array — bogus witness")
	}
}

func TestFindViolationPowerSet(t *testing.T) {
	u := value.NewSet("x", "y")
	ops := semiring.PowerSet(u)
	sample := []value.Set{nil, value.NewSet("x"), value.NewSet("y"), u}
	v := FindViolation(ops, sample)
	if v == nil {
		t.Fatal("non-trivial Boolean algebra should violate")
	}
	if v.Condition != "no-zero-divisors" {
		t.Errorf("power set should fail the zero-product property, got %s", v.Condition)
	}
}

// The theorem's equivalence, executed: an operator pair has a gadget
// violation on a sample iff it fails one of the three conditions on
// that sample.
func TestTheoremEquivalenceOverRegistry(t *testing.T) {
	for _, e := range semiring.Registry() {
		if e.Name == "max.+@0-signed" {
			continue // identities broken on that domain; Check would be vacuous
		}
		r := semiring.Check(e.Ops, e.Sample, value.FormatFloat)
		v := FindViolation(e.Ops, e.Sample)
		if r.TheoremII1() && v != nil {
			t.Errorf("%s: conditions hold but gadget violation found: %s", e.Name, v)
		}
		if !r.TheoremII1() && v == nil {
			t.Errorf("%s: conditions fail but no gadget violation demonstrated", e.Name)
		}
	}
}
