package graph

import (
	"fmt"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
)

// This file is the executable form of Theorem II.1 and Corollary III.1.
//
// Forward direction (conditions ⇒ adjacency): VerifyConstruction checks
// on a concrete graph that the Definition I.3 product is an adjacency
// array and that the sparse production kernel computes the same array.
//
// Converse direction (adjacency for all graphs ⇒ conditions), proved in
// the paper via Lemmas II.2–II.4: FindViolation turns any failed
// condition into a concrete gadget graph whose product demonstrably is
// not an adjacency array.

// VerifyConstruction builds the incidence arrays of g under w, computes
// the adjacency product with both the dense Definition I.3 fold and the
// sparse kernel, and checks (1) both agree, (2) the result satisfies
// Definition I.5, and (3) its row/column key sets are Kout/Kin. A nil
// error is a full verification of the theorem's forward direction on g.
func VerifyConstruction[V any](g *Graph, ops semiring.Ops[V], w Weights[V]) error {
	eout, ein, err := Incidence(g, ops, w)
	if err != nil {
		return err
	}
	dense, err := AdjacencyDense(eout, ein, ops)
	if err != nil {
		return fmt.Errorf("graph: dense construction: %w", err)
	}
	sparseA, err := Adjacency(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		return fmt.Errorf("graph: sparse construction: %w", err)
	}
	if !dense.Equal(sparseA, ops.Equal) {
		return fmt.Errorf("graph: sparse kernel disagrees with Definition I.3 product under %s", ops.Name)
	}
	if err := IsAdjacencyOf(dense, g, ops.IsZero); err != nil {
		return fmt.Errorf("graph: product is not an adjacency array under %s: %w", ops.Name, err)
	}
	return nil
}

// VerifyReverse checks Corollary III.1 on g: Einᵀ ⊕.⊗ Eout is an
// adjacency array of the reverse graph, again via the dense ground
// truth, and agrees with the sparse kernel.
func VerifyReverse[V any](g *Graph, ops semiring.Ops[V], w Weights[V]) error {
	eout, ein, err := Incidence(g, ops, w)
	if err != nil {
		return err
	}
	dense, err := assoc.MulDense(ein.Transpose(), eout, ops)
	if err != nil {
		return err
	}
	sparseA, err := ReverseAdjacency(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		return err
	}
	if !dense.Equal(sparseA, ops.Equal) {
		return fmt.Errorf("graph: reverse sparse kernel disagrees with dense product under %s", ops.Name)
	}
	if err := IsAdjacencyOf(dense, g.Reverse(), ops.IsZero); err != nil {
		return fmt.Errorf("graph: EinᵀEout is not an adjacency array of the reverse graph under %s: %w", ops.Name, err)
	}
	return nil
}

// Violation is a concrete demonstration that an operator pair cannot
// construct adjacency arrays: a gadget graph plus the offending product
// entry.
type Violation[V any] struct {
	// Condition names the failed Theorem II.1 condition.
	Condition string
	// Lemma is the paper lemma whose gadget realizes the failure.
	Lemma string
	// Graph is the gadget graph.
	Graph *Graph
	// Product is the dense Definition I.3 product EoutᵀEin.
	Product *assoc.Array[V]
	// Detail describes the observed violation of Definition I.5.
	Detail string
}

// String renders the violation for reports.
func (v *Violation[V]) String() string {
	return fmt.Sprintf("%s (Lemma %s) on %s: %s", v.Condition, v.Lemma, v.Graph, v.Detail)
}

// FindViolation searches the sample for witnesses of each failed
// Theorem II.1 condition and, when found, builds the corresponding
// lemma gadget and verifies concretely (via the dense product and
// Definition I.5) that the construction fails. It returns nil when the
// operator pair satisfies all three conditions on the sample — i.e. no
// gadget can be built, which is the theorem's forward direction.
func FindViolation[V any](ops semiring.Ops[V], sample []V) *Violation[V] {
	// Lemma II.2: zero-sum witnesses v ⊕ w = 0, v, w ≠ 0.
	for _, v := range sample {
		if ops.IsZero(v) {
			continue
		}
		for _, w := range sample {
			if ops.IsZero(w) || !ops.IsZero(ops.Add(v, w)) {
				continue
			}
			g, eout, ein := GadgetParallelEdges(v, w, ops.One)
			if prod, detail := demonstrate(g, eout, ein, ops); detail != "" {
				return &Violation[V]{
					Condition: "zero-sum-free", Lemma: "II.2",
					Graph: g, Product: prod, Detail: detail,
				}
			}
		}
	}
	// Lemma II.3: zero-divisor witnesses v ⊗ w = 0, v, w ≠ 0.
	for _, v := range sample {
		if ops.IsZero(v) {
			continue
		}
		for _, w := range sample {
			if ops.IsZero(w) || !ops.IsZero(ops.Mul(v, w)) {
				continue
			}
			g, eout, ein := GadgetSelfLoop(v, w)
			if prod, detail := demonstrate(g, eout, ein, ops); detail != "" {
				return &Violation[V]{
					Condition: "no-zero-divisors", Lemma: "II.3",
					Graph: g, Product: prod, Detail: detail,
				}
			}
		}
	}
	// Lemma II.4: annihilator witnesses v ⊗ 0 ≠ 0 or 0 ⊗ v ≠ 0.
	for _, v := range sample {
		if ops.IsZero(v) {
			continue
		}
		if ops.IsZero(ops.Mul(v, ops.Zero)) && ops.IsZero(ops.Mul(ops.Zero, v)) {
			continue
		}
		g, eout, ein := GadgetTwoSelfLoops(v)
		if prod, detail := demonstrate(g, eout, ein, ops); detail != "" {
			return &Violation[V]{
				Condition: "annihilator", Lemma: "II.4",
				Graph: g, Product: prod, Detail: detail,
			}
		}
	}
	// Corner of Lemma II.4: 0 ⊗ 0 ≠ 0 while every non-zero v
	// annihilates. Needs the three-self-loop gadget so a structural
	// 0⊗0 term lands on an edgeless vertex pair. Incidence entries must
	// be non-zero; use each non-zero sample value.
	if !ops.IsZero(ops.Mul(ops.Zero, ops.Zero)) {
		for _, v := range sample {
			if ops.IsZero(v) {
				continue
			}
			g, eout, ein := GadgetThreeSelfLoops(v)
			if prod, detail := demonstrate(g, eout, ein, ops); detail != "" {
				return &Violation[V]{
					Condition: "annihilator", Lemma: "II.4 (0⊗0 corner)",
					Graph: g, Product: prod, Detail: detail,
				}
			}
		}
	}
	return nil
}

// demonstrate computes the dense product and reports the Definition I.5
// violation text, or "" if the product happens to be a valid adjacency
// array (possible when multiple conditions interact).
func demonstrate[V any](g *Graph, eout, ein *assoc.Array[V], ops semiring.Ops[V]) (*assoc.Array[V], string) {
	prod, err := AdjacencyDense(eout, ein, ops)
	if err != nil {
		return nil, "construction error: " + err.Error()
	}
	// The gadget products can have key sets smaller than Kout×Kin when
	// whole rows vanish; reindex onto the full vertex sets so the
	// Definition I.5 check sees the intended shape.
	full, err := prod.Reindex(g.OutVertices(), g.InVertices())
	if err == nil {
		prod = full
	}
	if adjErr := IsAdjacencyOf(prod, g, ops.IsZero); adjErr != nil {
		return prod, adjErr.Error()
	}
	return prod, ""
}
