package adjarray_test

// facade_test.go — exercises every public wrapper the other root tests
// don't reach, keeping the facade honest (a wrapper that compiles but
// forwards to the wrong function would otherwise slip through).

import (
	"math"
	"testing"

	"adjarray"
)

func TestFacadeBuilderAndMul(t *testing.T) {
	b := adjarray.NewBuilder[float64](nil)
	b.Set("r", "k1", 2).Set("r", "k2", 3)
	a := b.Build()
	c := adjarray.FromTriples([]adjarray.Triple[float64]{
		{Row: "k1", Col: "x", Val: 10}, {Row: "k2", Col: "x", Val: 100},
	}, nil)
	prod, err := adjarray.Mul(a, c, adjarray.PlusTimes(), adjarray.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := prod.At("r", "x"); v != 2*10+3*100 {
		t.Errorf("Mul = %v", v)
	}
	dense, err := adjarray.MulDense(a, c, adjarray.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(prod, func(x, y float64) bool { return x == y }) {
		t.Error("MulDense disagrees with Mul for a compliant pair")
	}
}

func TestFacadeEWise(t *testing.T) {
	a := adjarray.FromTriples([]adjarray.Triple[float64]{{Row: "r", Col: "c", Val: 1}}, nil)
	b := adjarray.FromTriples([]adjarray.Triple[float64]{{Row: "r", Col: "c", Val: 2}}, nil)
	sum, err := adjarray.EWiseAdd(a, b, adjarray.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sum.At("r", "c"); v != 3 {
		t.Errorf("EWiseAdd = %v", v)
	}
	prod, err := adjarray.EWiseMul(a, b, adjarray.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := prod.At("r", "c"); v != 2 {
		t.Errorf("EWiseMul = %v", v)
	}
}

func TestFacadeIncidenceAndAdjacency(t *testing.T) {
	g, err := adjarray.NewGraph([]adjarray.Edge{
		{Key: "k1", Src: "a", Dst: "b"},
		{Key: "k2", Src: "b", Dst: "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	eout, ein, err := adjarray.Incidence(g, adjarray.PlusTimes(), adjarray.Weights[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := adjarray.Adjacency(eout, ein, adjarray.PlusTimes(), adjarray.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.At("a", "b"); v != 1 {
		t.Errorf("Adjacency(a,b) = %v", v)
	}
}

func TestFacadeMulKeys(t *testing.T) {
	a := adjarray.FromTriples([]adjarray.Triple[float64]{{Row: "r", Col: "k", Val: 1}}, nil)
	b := adjarray.FromTriples([]adjarray.Triple[float64]{{Row: "k", Col: "c", Val: 1}}, nil)
	prov, err := adjarray.MulKeys(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := prov.At("r", "c"); !s.Equal(adjarray.NewSet("k")) {
		t.Errorf("MulKeys = %v", s)
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	a := adjarray.FromTriples([]adjarray.Triple[float64]{
		{Row: "a", Col: "b", Val: 2},
		{Row: "b", Col: "c", Val: 2},
	}, nil)

	levels, err := adjarray.BFSLevels(a, "a")
	if err != nil || levels["c"] != 2 {
		t.Errorf("BFSLevels = %v, %v", levels, err)
	}
	dist, err := adjarray.SSSP(a, "a")
	if err != nil || dist["c"] != 4 {
		t.Errorf("SSSP = %v, %v", dist, err)
	}
	width, err := adjarray.WidestPath(a, "a")
	if err != nil || width["c"] != 2 {
		t.Errorf("WidestPath = %v, %v", width, err)
	}
	comp, err := adjarray.Components(a)
	if err != nil || comp["c"] != "a" {
		t.Errorf("Components = %v, %v", comp, err)
	}
	tc, err := adjarray.TransitiveClosure(a)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tc.At("a", "c"); !ok || !v {
		t.Error("TransitiveClosure missing a→c")
	}
	out := adjarray.OutDegrees(a)
	in := adjarray.InDegrees(a)
	if out["a"] != 1 || in["c"] != 1 {
		t.Errorf("degrees = %v / %v", out, in)
	}
	rank, iters, err := adjarray.PageRank(a, 0.85, 1e-8, 100)
	if err != nil || iters == 0 {
		t.Fatalf("PageRank: %v", err)
	}
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("PageRank sum = %v", sum)
	}

	// Symmetric triangle for TriangleCount.
	tri := adjarray.FromTriples([]adjarray.Triple[float64]{
		{Row: "a", Col: "b", Val: 1}, {Row: "b", Col: "a", Val: 1},
		{Row: "b", Col: "c", Val: 1}, {Row: "c", Col: "b", Val: 1},
		{Row: "a", Col: "c", Val: 1}, {Row: "c", Col: "a", Val: 1},
	}, nil)
	n, err := adjarray.TriangleCount(tri)
	if err != nil || n != 1 {
		t.Errorf("TriangleCount = %d, %v", n, err)
	}
}

func TestFacadeConformance(t *testing.T) {
	names := adjarray.ConformancePaths()
	if len(names) < 5 {
		t.Fatalf("conformance path roster too small: %v", names)
	}
	if err := adjarray.SelfCheck(17, 8); err != nil {
		d, ok := err.(*adjarray.ConformanceDivergence)
		if !ok {
			t.Fatalf("SelfCheck: %v", err)
		}
		t.Fatalf("construction paths diverged: %s", d.Error())
	}
}

func TestFacadeCSRGraphAndStreaming(t *testing.T) {
	// A maintained view ingests a mix of weighted and unweighted edges
	// under max.min — the widest-path pair whose One (+Inf) the old
	// Zero-sentinel convention could not produce from Go zero values.
	v := adjarray.NewAdjacencyView(adjarray.MaxMin(), adjarray.StreamOptions{})
	if err := v.Append([]adjarray.StreamEdge[float64]{
		{Src: "a", Dst: "b"}, // unweighted: width +Inf
		adjarray.WeightedStreamEdge("", "b", "c", 3.0, 3),
	}); err != nil {
		t.Fatal(err)
	}
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := snap.Adjacency.At("a", "b"); !ok || !math.IsInf(w, 1) {
		t.Fatalf("unweighted max.min edge = %v (stored=%v), want +Inf", w, ok)
	}

	g, err := adjarray.CSRGraphFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	width, err := g.WidestPath("a")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := adjarray.WidestPath(snap.Adjacency, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(width) != len(oracle) || width["c"] != oracle["c"] || width["c"] != 3 {
		t.Fatalf("CSR widest = %v, oracle = %v", width, oracle)
	}

	cg, err := adjarray.NewCSRGraph(snap.Adjacency)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := cg.BFSLevels("a")
	if err != nil {
		t.Fatal(err)
	}
	if levels["c"] != 2 {
		t.Fatalf("CSR BFS levels = %v", levels)
	}
	if _, err := adjarray.NewCSRGraphPattern(snap.Adjacency); err != nil {
		t.Fatal(err)
	}
}
