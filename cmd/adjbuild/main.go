// Command adjbuild is the production pipeline: it reads source and
// target incidence arrays from TSV triple files (row<TAB>col<TAB>val),
// constructs the adjacency array under a chosen ⊕.⊗ operator pair and
// backend, and writes the result as TSV triples (or a formatted grid).
//
// The Theorem II.1 conditions are checked against both the pair's
// canonical domain and the values present in the data; construction is
// refused (with the gadget counterexample printed) unless -force.
//
// Usage:
//
//	adjbuild -eout eout.tsv -ein ein.tsv -semiring "+.*" -o adj.tsv
//	adjbuild -eout eout.tsv -ein ein.tsv -semiring max.min -backend parallel -grid
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adjarray/internal/assoc"
	"adjarray/internal/core"
	"adjarray/internal/render"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func main() {
	eoutPath := flag.String("eout", "", "TSV triples of the source incidence array Eout (required)")
	einPath := flag.String("ein", "", "TSV triples of the target incidence array Ein (required)")
	sr := flag.String("semiring", "+.*", "operator pair name")
	backend := flag.String("backend", "csr", "construction backend: csr | parallel | tstore | dense")
	workers := flag.Int("workers", 0, "worker count for the parallel backend (0 = all cores)")
	out := flag.String("o", "-", "output TSV path ('-' = stdout)")
	grid := flag.Bool("grid", false, "print a formatted grid instead of TSV triples")
	force := flag.Bool("force", false, "construct even if the algebra violates the Theorem II.1 conditions")
	validate := flag.Bool("validate", false, "validate the result against the graph encoded by the incidence arrays")
	flag.Parse()

	if *eoutPath == "" || *einPath == "" {
		fmt.Fprintln(os.Stderr, "adjbuild: -eout and -ein are required")
		flag.Usage()
		os.Exit(2)
	}
	eout, err := readArray(*eoutPath)
	if err != nil {
		fatal(err)
	}
	ein, err := readArray(*einPath)
	if err != nil {
		fatal(err)
	}

	res, err := core.Build(core.Request{
		Eout: eout, Ein: ein,
		Semiring:           *sr,
		Backend:            core.Backend(*backend),
		Workers:            *workers,
		SkipConditionCheck: *force,
		Validate:           *validate,
	})
	if err != nil {
		if res != nil && res.Violation != nil {
			fmt.Fprintln(os.Stderr, "adjbuild: construction refused; counterexample gadget:")
			fmt.Fprintf(os.Stderr, "  %s\n", res.Violation)
			fmt.Fprintln(os.Stderr, "  (pass -force to construct anyway)")
		}
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "adjbuild: %s backend=%s nnz=%d elapsed=%s\n",
		res.Ops.Name, *backend, res.Adjacency.NNZ(), res.Elapsed)

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *grid {
		fmt.Fprint(w, assoc.Format(res.Adjacency, value.FormatFloat))
		return
	}
	if err := writeArray(w, res.Adjacency); err != nil {
		fatal(err)
	}
}

func readArray(path string) (*assoc.Array[float64], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := render.ReadTriples(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	ts := make([]assoc.Triple[float64], 0, len(recs))
	for _, r := range recs {
		v, err := value.ParseFloat(r.Val)
		if err != nil {
			return nil, fmt.Errorf("%s: value %q: %w", path, r.Val, err)
		}
		ts = append(ts, assoc.Triple[float64]{Row: r.Row, Col: r.Col, Val: v})
	}
	return assoc.FromTriples(ts, nil), nil
}

func writeArray(w io.Writer, a *assoc.Array[float64]) error {
	var recs []render.TripleRecord
	a.Iterate(func(row, col string, v float64) {
		recs = append(recs, render.TripleRecord{Row: row, Col: col, Val: value.FormatFloat(v)})
	})
	return render.WriteTriples(w, recs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adjbuild:", err)
	os.Exit(1)
}

func init() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: adjbuild -eout E.tsv -ein E2.tsv [flags]\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "known operator pairs: %v\n", semiring.Names())
	}
}
