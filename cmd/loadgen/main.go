// Command loadgen is the closed-loop load harness for adjserve's front
// door. It drives an open-model request stream (exponential
// inter-arrival times at a target rate, so queueing delay is measured
// rather than hidden by back-pressure as a closed loop would) with
// zipfian vertex popularity — matching the R-MAT degree skew, so the
// hot vertices of the graph are also the hot vertices of the workload —
// and reports per-endpoint p50/p99/p999 latency plus shed (429) and
// degraded (503, a read-only store shedding ingest) counts as distinct
// columns.
//
// With -ingest-weight > 0 the mix includes POST /ingest writes, so the
// harness can measure a degraded store: when storage wedges read-only,
// ingest 503s land in the degraded column while read latencies keep
// being measured — benchdiff then diffs the shed/degraded rates
// between baselines.
//
// With no -target it self-serves: it builds an in-process ingest,
// loads an R-MAT graph, and mounts the same serve.New front door that
// cmd/adjserve exposes, so the harness measures the serving path
// without a network between benchmarks. Point -target at a running
// adjserve to load a real deployment instead.
//
// -json writes the results in the graphbench baseline schema (rows
// keyed generator|semiring|backend|workers, one row per endpoint, with
// p50_ns/p99_ns/p999_ns alongside build_ns=p50) so cmd/benchdiff can
// compare serving latency trajectories exactly like build benchmarks:
//
//	loadgen -scale 12 -rate 2000 -duration 10s -json BENCH_7.json
//	benchdiff BENCH_7.json BENCH_7_CI.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"adjarray/internal/core"
	"adjarray/internal/dataset"
	"adjarray/internal/render"
	"adjarray/internal/serve"
	"adjarray/internal/stream"
)

type config struct {
	target       string
	scale        int
	edgeFactor   int
	shards       int
	seed         int64
	rate         float64
	duration     time.Duration
	maxOut       int
	zipfS        float64
	batchOps     int
	ingestWeight int
	jsonPath     string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.target, "target", "", "base URL of a running adjserve (empty = self-serve in-process)")
	flag.IntVar(&cfg.scale, "scale", 12, "R-MAT scale for self-serve mode (2^scale vertices)")
	flag.IntVar(&cfg.edgeFactor, "edge-factor", 8, "R-MAT edges per vertex")
	flag.IntVar(&cfg.shards, "shards", 0, "self-serve ingest shards (0/1 = single view)")
	flag.Int64Var(&cfg.seed, "seed", 1, "generator and workload seed")
	flag.Float64Var(&cfg.rate, "rate", 2000, "offered request rate per second (open model)")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "load duration")
	flag.IntVar(&cfg.maxOut, "max-outstanding", 512, "bound on concurrent in-flight requests; arrivals beyond it are dropped and counted")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.2, "zipf exponent for vertex popularity (>1)")
	flag.IntVar(&cfg.batchOps, "batch-ops", 8, "ops per POST /batch request")
	flag.IntVar(&cfg.ingestWeight, "ingest-weight", 0, "mix weight for POST /ingest writes (0 = read-only workload)")
	flag.StringVar(&cfg.jsonPath, "json", "", "write results as a graphbench-schema baseline to this path")
	flag.Parse()

	sum, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Print(sum.table())
	if cfg.jsonPath != "" {
		if err := sum.writeJSON(cfg.jsonPath, time.Now().UTC()); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", cfg.jsonPath)
	}
}

// mix is the endpoint blend: mostly cheap point reads with a steady
// stream of algorithm queries and batches — the shape a front door
// actually sees, and enough pressure on both admission pools to
// exercise shedding under overload.
type arm struct {
	name   string
	weight int
}

var mix = []arm{
	{"/at", 35},
	{"/row", 25},
	{"/bfs", 15},
	{"/pagerank", 10},
	{"/batch", 15},
}

// endpointStats accumulates one endpoint's latencies and outcomes.
type endpointStats struct {
	mu        sync.Mutex
	latencies []time.Duration // successful (2xx) requests only
	shed      int             // 429: admission control working as designed
	degraded  int             // 503: a read-only store shedding writes
	errors    int             // anything else
}

type summary struct {
	cfg        config
	mix        []arm
	byEndpoint map[string]*endpointStats
	dropped    int // arrivals beyond max-outstanding, never sent
	offered    int
	elapsed    time.Duration
	vertices   int
	edges      int
	nnz        int
	workers    int
}

func run(cfg config) (*summary, error) {
	if cfg.rate <= 0 || cfg.duration <= 0 {
		return nil, fmt.Errorf("rate and duration must be positive")
	}
	if cfg.zipfS <= 1 {
		return nil, fmt.Errorf("zipf-s must be > 1, got %v", cfg.zipfS)
	}
	rng := rand.New(rand.NewSource(cfg.seed))

	sum := &summary{cfg: cfg, mix: mix, byEndpoint: map[string]*endpointStats{}, workers: runtime.GOMAXPROCS(0)}
	if cfg.ingestWeight > 0 {
		sum.mix = append(append([]arm{}, mix...), arm{"/ingest", cfg.ingestWeight})
	}
	for _, m := range sum.mix {
		sum.byEndpoint[m.name] = &endpointStats{}
	}

	base := cfg.target
	var sources []string
	if base == "" {
		srv, info, err := selfServe(cfg, rng)
		if err != nil {
			return nil, err
		}
		defer srv.close()
		base = srv.url
		sources = info.sources
		sum.vertices, sum.edges, sum.nnz = info.vertices, info.edges, info.nnz
	} else {
		// Against a live deployment the vertex space is whatever the
		// server ingested; synthesize the same R-MAT key names.
		for i := 0; i < 1<<cfg.scale; i++ {
			sources = append(sources, fmt.Sprintf("v%06d", i))
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("no source vertices to query")
	}

	// Zipf over popularity rank: rank 0 is the highest-out-degree vertex,
	// so the workload's hot set is the graph's hot set.
	zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(len(sources)-1))
	pick := func() string { return sources[zipf.Uint64()] }

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.maxOut,
		MaxIdleConnsPerHost: cfg.maxOut,
	}}

	var wg sync.WaitGroup
	tokens := make(chan struct{}, cfg.maxOut)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()

	// The arrival process owns the randomness; worker goroutines only
	// execute the request they were handed.
	weightTotal := 0
	for _, m := range sum.mix {
		weightTotal += m.weight
	}
	for time.Now().Before(deadline) {
		// Exponential inter-arrival: a Poisson process at cfg.rate.
		time.Sleep(time.Duration(rng.ExpFloat64() / cfg.rate * float64(time.Second)))
		sum.offered++
		w := rng.Intn(weightTotal)
		endpoint := sum.mix[0].name
		for _, m := range sum.mix {
			if w < m.weight {
				endpoint = m.name
				break
			}
			w -= m.weight
		}
		method, url, body := "GET", "", ""
		switch endpoint {
		case "/at":
			url = fmt.Sprintf("%s/at?src=%s&dst=%s", base, pick(), pick())
		case "/row":
			url = fmt.Sprintf("%s/row?src=%s", base, pick())
		case "/bfs":
			url = fmt.Sprintf("%s/bfs?src=%s", base, pick())
		case "/pagerank":
			url = fmt.Sprintf("%s/pagerank?iters=50", base)
		case "/batch":
			method, url, body = "POST", base+"/batch", batchBody(cfg.batchOps, pick)
		case "/ingest":
			method, url, body = "POST", base+"/ingest", ingestBody(cfg.batchOps, pick)
		}
		select {
		case tokens <- struct{}{}:
		default:
			sum.dropped++ // open model: late is worse than lost
			continue
		}
		wg.Add(1)
		go func(endpoint, method, url, body string) {
			defer wg.Done()
			defer func() { <-tokens }()
			fire(client, sum.byEndpoint[endpoint], method, url, body)
		}(endpoint, method, url, body)
	}
	wg.Wait()
	sum.elapsed = time.Since(start)
	return sum, nil
}

// batchBody builds a POST /batch payload of point reads, rows, and one
// BFS — the shape that amortizes a single pinned snapshot.
func batchBody(n int, pick func() string) string {
	var ops []map[string]any
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			ops = append(ops, map[string]any{"op": "at", "src": pick(), "dst": pick()})
		case 1:
			ops = append(ops, map[string]any{"op": "row", "src": pick()})
		default:
			ops = append(ops, map[string]any{"op": "bfs", "src": pick()})
		}
	}
	raw, _ := json.Marshal(map[string]any{"ops": ops})
	return string(raw)
}

// ingestBody builds a POST /ingest payload of unkeyed edges between
// zipf-picked vertices (keys auto-assign server-side, so concurrent
// write arms compose).
func ingestBody(n int, pick func() string) string {
	edges := make([]map[string]any, n)
	for i := range edges {
		edges[i] = map[string]any{"src": pick(), "dst": pick()}
	}
	raw, _ := json.Marshal(map[string]any{"edges": edges})
	return string(raw)
}

// fire executes one request and records it. 404 (a zipf-picked vertex
// the ingest never saw as a source) counts as success for latency
// purposes — the server did its work; 429 is shed (admission control);
// 503 is degraded (a read-only store shedding writes) and counted
// distinctly so a fault-injection run can diff shed rates; other
// non-2xx are errors.
func fire(client *http.Client, st *endpointStats, method, url, body string) {
	t0 := time.Now()
	var resp *http.Response
	var err error
	if method == "POST" {
		resp, err = client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	} else {
		resp, err = client.Get(url)
	}
	if err != nil {
		st.mu.Lock()
		st.errors++
		st.mu.Unlock()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(t0)

	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		st.shed++
	case resp.StatusCode == http.StatusServiceUnavailable:
		st.degraded++
	case resp.StatusCode < 300 || resp.StatusCode == http.StatusNotFound:
		st.latencies = append(st.latencies, lat)
	default:
		st.errors++
	}
}

// ---- self-serve mode ----

type selfServer struct {
	url  string
	http *http.Server
	ing  *core.Ingest
	ln   net.Listener
}

func (s *selfServer) close() {
	s.http.Close()
	s.ing.Close()
}

type graphInfo struct {
	sources  []string
	vertices int
	edges    int
	nnz      int
}

// selfServe builds the in-process target: R-MAT ingest behind the same
// front door cmd/adjserve mounts.
func selfServe(cfg config, rng *rand.Rand) (*selfServer, graphInfo, error) {
	var info graphInfo
	ing, err := core.NewIngest(core.IngestOptions{
		Semiring:  "+.*",
		BatchSize: 1024,
		Shards:    cfg.shards,
	})
	if err != nil {
		return nil, info, err
	}
	g := dataset.RMAT(rng, cfg.scale, cfg.edgeFactor)
	outDeg := map[string]int{}
	for _, e := range g.Edges() {
		if err := ing.Add(stream.Weighted(e.Key, e.Src, e.Dst, 1.0, 1.0)); err != nil {
			ing.Close()
			return nil, info, err
		}
		outDeg[e.Src]++
		info.edges++
	}
	if _, err := ing.Snapshot(); err != nil {
		ing.Close()
		return nil, info, err
	}

	// Popularity rank = out-degree rank (ties broken by key for
	// determinism): the workload skew tracks the graph skew.
	for src := range outDeg {
		info.sources = append(info.sources, src)
	}
	sort.Slice(info.sources, func(i, j int) bool {
		a, b := info.sources[i], info.sources[j]
		if outDeg[a] != outDeg[b] {
			return outDeg[a] > outDeg[b]
		}
		return a < b
	})
	info.vertices = len(info.sources)
	if sv := ing.Sharded(); sv != nil {
		st := sv.Stats()
		info.nnz = st.AdjNNZ
	} else {
		info.nnz = ing.View().Stats().AdjNNZ
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ing.Close()
		return nil, info, err
	}
	hs := &http.Server{Handler: serve.New(ing, serve.Options{})}
	go hs.Serve(ln)
	return &selfServer{
		url:  "http://" + ln.Addr().String(),
		http: hs,
		ing:  ing,
		ln:   ln,
	}, info, nil
}

// ---- reporting ----

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

type endpointResult struct {
	endpoint                   string
	count, shed, degraded, err int
	p50, p99, p999             time.Duration
}

func (s *summary) results() []endpointResult {
	var out []endpointResult
	for _, m := range s.mix {
		st := s.byEndpoint[m.name]
		sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
		out = append(out, endpointResult{
			endpoint: m.name,
			count:    len(st.latencies),
			shed:     st.shed,
			degraded: st.degraded,
			err:      st.errors,
			p50:      percentile(st.latencies, 0.50),
			p99:      percentile(st.latencies, 0.99),
			p999:     percentile(st.latencies, 0.999),
		})
	}
	return out
}

func (s *summary) table() string {
	var rows [][]string
	total, shed, degraded := 0, 0, 0
	for _, r := range s.results() {
		rows = append(rows, []string{
			r.endpoint,
			fmt.Sprintf("%d", r.count),
			fmt.Sprintf("%d", r.shed),
			fmt.Sprintf("%d", r.degraded),
			fmt.Sprintf("%d", r.err),
			r.p50.String(),
			r.p99.String(),
			r.p999.String(),
		})
		total += r.count + r.shed + r.degraded + r.err
		shed += r.shed
		degraded += r.degraded
	}
	head := fmt.Sprintf(
		"offered %d requests over %s (%.0f/s target), %d answered, %d shed (429), %d degraded (503), %d dropped client-side\n",
		s.offered, s.elapsed.Round(time.Millisecond), s.cfg.rate, total, shed, degraded, s.dropped)
	return head + render.Columns([]string{"endpoint", "ok", "shed", "503", "err", "p50", "p99", "p999"}, rows)
}

// jsonRow mirrors the graphbench baseline schema so cmd/benchdiff can
// diff serving latency like build benchmarks; build_ns carries p50 for
// the shared delta column, the explicit percentile fields carry the
// full curve.
type jsonRow struct {
	Generator string `json:"generator"`
	Vertices  int    `json:"vertices"`
	Edges     int    `json:"edges"`
	Semiring  string `json:"semiring"`
	Backend   string `json:"backend"`
	Workers   int    `json:"workers"`
	NNZ       int    `json:"nnz"`
	BuildNs   int64  `json:"build_ns"`
	AllocsOp  int64  `json:"allocs_per_op"`
	BytesOp   int64  `json:"bytes_per_op"`
	P50Ns     int64  `json:"p50_ns"`
	P99Ns     int64  `json:"p99_ns"`
	P999Ns    int64  `json:"p999_ns"`
	Requests  int    `json:"requests"`
	Shed      int    `json:"shed"`
	Degraded  int    `json:"degraded"`
}

type jsonBaseline struct {
	Timestamp  string    `json:"timestamp"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Seed       int64     `json:"seed"`
	Rows       []jsonRow `json:"rows"`
}

func (s *summary) writeJSON(path string, now time.Time) error {
	b := jsonBaseline{
		Timestamp:  now.Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       s.cfg.seed,
	}
	gen := fmt.Sprintf("serve-rmat-s%d", s.cfg.scale)
	for _, r := range s.results() {
		b.Rows = append(b.Rows, jsonRow{
			Generator: gen,
			Vertices:  s.vertices,
			Edges:     s.edges,
			Semiring:  "+.*",
			Backend:   r.endpoint,
			Workers:   s.workers,
			NNZ:       s.nnz,
			BuildNs:   r.p50.Nanoseconds(),
			P50Ns:     r.p50.Nanoseconds(),
			P99Ns:     r.p99.Nanoseconds(),
			P999Ns:    r.p999.Nanoseconds(),
			Requests:  r.count,
			Shed:      r.shed,
			Degraded:  r.degraded,
		})
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
