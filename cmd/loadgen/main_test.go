package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Smoke: a short self-serve run against an in-process front door must
// answer every endpoint in the mix, and the emitted baseline must be
// valid benchdiff input (graphbench schema, one row per endpoint, with
// a monotone percentile curve).
func TestLoadgenSmokeSelfServe(t *testing.T) {
	cfg := config{
		scale:      7,
		edgeFactor: 8,
		seed:       42,
		rate:       1500,
		duration:   1200 * time.Millisecond,
		maxOut:     128,
		zipfS:      1.2,
		batchOps:   4,
	}
	sum, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.offered == 0 {
		t.Fatal("no requests offered")
	}
	if sum.vertices == 0 || sum.edges == 0 || sum.nnz == 0 {
		t.Fatalf("self-serve graph info empty: %+v", sum)
	}
	answered := 0
	for _, r := range sum.results() {
		if r.err > 0 {
			t.Errorf("%s: %d errors", r.endpoint, r.err)
		}
		if r.count == 0 {
			t.Errorf("%s: no successful requests in a %s run", r.endpoint, cfg.duration)
		}
		if r.p50 > r.p99 || r.p99 > r.p999 {
			t.Errorf("%s: percentiles not monotone: %v %v %v", r.endpoint, r.p50, r.p99, r.p999)
		}
		answered += r.count + r.shed + r.degraded + r.err
	}
	if answered+sum.dropped != sum.offered {
		t.Fatalf("answered %d + dropped %d != offered %d", answered, sum.dropped, sum.offered)
	}
	if sum.table() == "" {
		t.Fatal("empty table")
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := sum.writeJSON(path, time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b jsonBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if len(b.Rows) != len(mix) {
		t.Fatalf("baseline has %d rows, want %d", len(b.Rows), len(mix))
	}
	for _, r := range b.Rows {
		if r.Generator != "serve-rmat-s7" || r.Semiring != "+.*" || r.Backend == "" || r.Workers == 0 {
			t.Fatalf("malformed row: %+v", r)
		}
		if r.BuildNs != r.P50Ns || r.P50Ns <= 0 {
			t.Fatalf("build_ns must carry p50 for benchdiff: %+v", r)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 5}, {0.99, 10}, {0.999, 10}, {0.1, 1}, {1.0, 10}} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
	if got := percentile([]time.Duration{7}, 0.999); got != 7 {
		t.Errorf("percentile(single) = %v, want 7", got)
	}
}

func TestBatchBody(t *testing.T) {
	body := batchBody(5, func() string { return "v000001" })
	var req struct {
		Ops []map[string]any `json:"ops"`
	}
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Ops) != 5 {
		t.Fatalf("ops = %d, want 5", len(req.Ops))
	}
	for _, op := range req.Ops {
		switch op["op"] {
		case "at", "row", "bfs":
		default:
			t.Fatalf("unexpected op %v", op["op"])
		}
	}
}

// TestFireCountsDegradedDistinctly: 503 (a read-only store shedding
// writes) must land in its own column — not shed (429), not error — so
// benchdiff can diff degraded rates between baselines.
func TestFireCountsDegradedDistinctly(t *testing.T) {
	codes := map[string]int{
		"/ok":       http.StatusOK,
		"/shed":     http.StatusTooManyRequests,
		"/degraded": http.StatusServiceUnavailable,
		"/err":      http.StatusInternalServerError,
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(codes[r.URL.Path])
	}))
	defer ts.Close()
	st := &endpointStats{}
	for path := range codes {
		fire(ts.Client(), st, "GET", ts.URL+path, "")
	}
	if len(st.latencies) != 1 || st.shed != 1 || st.degraded != 1 || st.errors != 1 {
		t.Fatalf("ok=%d shed=%d degraded=%d err=%d, want 1 each",
			len(st.latencies), st.shed, st.degraded, st.errors)
	}
}

func TestIngestBody(t *testing.T) {
	body := ingestBody(4, func() string { return "v000002" })
	var req struct {
		Edges []map[string]any `json:"edges"`
	}
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(req.Edges))
	}
	for _, e := range req.Edges {
		if e["src"] != "v000002" || e["dst"] != "v000002" || e["key"] != nil {
			t.Fatalf("malformed edge %v (keys must auto-assign server-side)", e)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := run(config{rate: 0, duration: time.Second, zipfS: 1.2}); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := run(config{rate: 100, duration: time.Second, zipfS: 1.0}); err == nil {
		t.Error("zipf-s 1.0 accepted")
	}
}
