// Command benchdiff compares two graphbench -json baseline files and
// prints a benchstat-style table: one line per configuration present in
// both files (matched on generator+semiring+backend+workers), with the
// old and new wall times and the delta. Rows present on only one side
// are listed separately, so a renamed arm is visible instead of
// silently dropped.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//
// benchdiff never exits non-zero for regressions — it is a reporting
// tool for CI artifacts (the bench smoke arm runs on shared runners
// whose timings gate nothing); it exits non-zero only when a file is
// unreadable.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"adjarray/internal/render"
)

type row struct {
	Generator string `json:"generator"`
	Semiring  string `json:"semiring"`
	Backend   string `json:"backend"`
	Workers   int    `json:"workers"`
	Edges     int    `json:"edges"`
	NNZ       int    `json:"nnz"`
	BuildNs   int64  `json:"build_ns"`
	AllocsOp  int64  `json:"allocs_per_op"`
	BytesOp   int64  `json:"bytes_per_op"`
	// Latency percentiles, present in loadgen baselines (BENCH_7+):
	// build_ns carries p50 there so the shared delta column works, and
	// the tail gets its own column.
	P99Ns  int64 `json:"p99_ns,omitempty"`
	P999Ns int64 `json:"p999_ns,omitempty"`
	// Outcome counts, also loadgen-only: answered requests, 429s shed
	// by admission control, 503s shed by a degraded (read-only) store.
	// Diffed as rates so a fault-injection arm's shed trajectory is
	// comparable across runs with different request counts.
	Requests int `json:"requests,omitempty"`
	Shed     int `json:"shed,omitempty"`
	Degraded int `json:"degraded,omitempty"`
}

// shedRate is the fraction of an endpoint's answered+shed traffic that
// was refused (429 admission + 503 degraded), as a percentage.
func shedRate(r row) (float64, bool) {
	total := r.Requests + r.Shed + r.Degraded
	if total == 0 {
		return 0, false
	}
	return float64(r.Shed+r.Degraded) / float64(total) * 100, true
}

type baseline struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Rows       []row  `json:"rows"`
}

func load(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	return b, json.Unmarshal(data, &b)
}

func key(r row) string {
	return fmt.Sprintf("%s|%s|%s|w%d", r.Generator, r.Semiring, r.Backend, r.Workers)
}

func ms(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	new_, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Printf("old: %s (%s, GOMAXPROCS=%d)\n", os.Args[1], old.GoVersion, old.GOMAXPROCS)
	fmt.Printf("new: %s (%s, GOMAXPROCS=%d)\n\n", os.Args[2], new_.GoVersion, new_.GOMAXPROCS)

	oldBy := map[string]row{}
	for _, r := range old.Rows {
		oldBy[key(r)] = r
	}
	newBy := map[string]row{}
	for _, r := range new_.Rows {
		newBy[key(r)] = r
	}

	var shared []string
	for k := range newBy {
		if _, ok := oldBy[k]; ok {
			shared = append(shared, k)
		}
	}
	sort.Strings(shared)
	var rows [][]string
	for _, k := range shared {
		o, n := oldBy[k], newBy[k]
		delta := "~"
		if o.BuildNs > 0 {
			d := float64(n.BuildNs-o.BuildNs) / float64(o.BuildNs) * 100
			delta = fmt.Sprintf("%+.1f%%", d)
		}
		alloc := ""
		if o.AllocsOp > 0 || n.AllocsOp > 0 {
			alloc = fmt.Sprintf("%d→%d", o.AllocsOp, n.AllocsOp)
		}
		// Serving-latency rows (loadgen baselines) also carry the tail;
		// build-benchmark rows leave the column empty.
		p99 := ""
		if o.P99Ns > 0 && n.P99Ns > 0 {
			p99 = fmt.Sprintf("%s→%s", ms(o.P99Ns), ms(n.P99Ns))
		}
		shed := ""
		if or, ok := shedRate(o); ok {
			if nr, ok := shedRate(n); ok {
				shed = fmt.Sprintf("%.1f%%→%.1f%%", or, nr)
			}
		}
		rows = append(rows, []string{k, ms(o.BuildNs), ms(n.BuildNs), delta, p99, shed, alloc})
	}
	fmt.Print(render.Columns([]string{"configuration", "old", "new", "delta", "p99", "shed", "allocs_op"}, rows))

	report := func(label string, only map[string]row, other map[string]row) {
		var ks []string
		for k := range only {
			if _, ok := other[k]; !ok {
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		if len(ks) > 0 {
			fmt.Printf("\n%s:\n", label)
			for _, k := range ks {
				fmt.Printf("  %s (%s)\n", k, ms(only[k].BuildNs))
			}
		}
	}
	report("only in old", oldBy, newBy)
	report("only in new", newBy, oldBy)
}
