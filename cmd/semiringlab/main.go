// Command semiringlab reports the algebraic analysis of the built-in
// operator pairs: the Section III classification table, the full
// Theorem II.1 condition report per pair, and — for non-compliant
// pairs — the concrete Lemma II.2–II.4 gadget graph whose incidence
// product fails to be an adjacency array.
//
// Usage:
//
//	semiringlab              # classification table for all algebras
//	semiringlab -pair max.+  # full report for one pair
//	semiringlab -gadgets     # demonstrate violations for non-examples
package main

import (
	"flag"
	"fmt"
	"os"

	"adjarray/internal/assoc"
	"adjarray/internal/graph"
	"adjarray/internal/render"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func main() {
	pair := flag.String("pair", "", "report a single operator pair by name")
	gadgets := flag.Bool("gadgets", false, "demonstrate gadget violations for non-compliant pairs")
	custom := flag.String("custom", "", "JSON file defining a finite algebra (elements/zero/one/add/mul tables)")
	flag.Parse()

	switch {
	case *custom != "":
		reportCustom(*custom)
	case *pair != "":
		reportPair(*pair)
	case *gadgets:
		demonstrateGadgets()
	default:
		printClassification()
	}
}

func reportCustom(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semiringlab:", err)
		os.Exit(1)
	}
	defer f.Close()
	alg, name, err := semiring.ParseFiniteAlgebraJSON(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semiringlab:", err)
		os.Exit(1)
	}
	ops := alg.Ops(name)
	fmt.Printf("%s — user-defined finite algebra over %v\n\n", name, alg.Elements)
	fmt.Print(semiring.Check(ops, alg.Sample(), nil))
	if v := graph.FindViolation(ops, alg.Sample()); v != nil {
		fmt.Println()
		fmt.Printf("violation: %s\n", v)
		fmt.Println("gadget edges:")
		for _, e := range v.Graph.Edges() {
			fmt.Printf("  %s: %s -> %s\n", e.Key, e.Src, e.Dst)
		}
		if v.Product != nil {
			fmt.Println("Definition I.3 product EoutᵀEin:")
			fmt.Print(assoc.Format(v.Product, func(s string) string { return s }))
		}
	}
}

func printClassification() {
	fmt.Println("Theorem II.1 compliance of built-in algebras (Section III classification):")
	fmt.Println()
	rows := semiring.Classify()
	var cells [][]string
	for _, r := range rows {
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "NO"
		}
		verdict := "adjacency guaranteed"
		if !r.TheoremOK {
			verdict = "NOT guaranteed"
		}
		cells = append(cells, []string{
			r.Name, r.Domain, mark(r.ZeroSumFree), mark(r.NoZeroDivisors), mark(r.Annihilator), verdict,
		})
	}
	fmt.Print(render.Columns(
		[]string{"pair", "domain", "zero-sum-free", "no-zero-divisors", "annihilator", "verdict"},
		cells,
	))
}

func reportPair(name string) {
	e, ok := semiring.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "semiringlab: unknown pair %q; known pairs: %v\n", name, semiring.Names())
		os.Exit(2)
	}
	fmt.Printf("%s — %s\n\n", e.Name, e.Description)
	fmt.Print(semiring.Check(e.Ops, e.Sample, value.FormatFloat))
	if v := graph.FindViolation(e.Ops, e.Sample); v != nil {
		fmt.Println()
		printViolation(v)
	}
}

func demonstrateGadgets() {
	for _, e := range semiring.Registry() {
		v := graph.FindViolation(e.Ops, e.Sample)
		if v == nil {
			continue
		}
		fmt.Printf("== %s ==\n", e.Name)
		printViolation(v)
		fmt.Println()
	}
}

func printViolation(v *graph.Violation[float64]) {
	fmt.Printf("violation: %s\n", v)
	fmt.Println("gadget edges:")
	for _, e := range v.Graph.Edges() {
		fmt.Printf("  %s: %s -> %s\n", e.Key, e.Src, e.Dst)
	}
	if v.Product != nil {
		fmt.Println("Definition I.3 product EoutᵀEin:")
		fmt.Print(assoc.Format(v.Product, value.FormatFloat))
	}
}
