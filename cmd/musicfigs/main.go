// Command musicfigs regenerates the paper's Figures 1–5 from the
// reconstructed music-metadata dataset and (with -check) compares every
// computed adjacency array against the values printed in the paper.
//
// Usage:
//
//	musicfigs            # print all five figures
//	musicfigs -fig 3     # print one figure
//	musicfigs -check     # exit non-zero unless Figures 3 and 5 match
package main

import (
	"flag"
	"fmt"
	"os"

	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func main() {
	fig := flag.Int("fig", 0, "figure to print (1-5; 0 = all)")
	check := flag.Bool("check", false, "compare computed arrays against the paper's values")
	prov := flag.Bool("prov", false, "print the provenance form of Figure 3 (entries = connecting track sets)")
	flag.Parse()

	if *prov {
		printProvenance()
		return
	}
	if *check {
		if err := checkFigures(); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("OK: Figures 3 and 5 match the paper bit-for-bit (7 operator pairs each)")
		return
	}

	figs := []int{1, 2, 3, 4, 5}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, f := range figs {
		switch f {
		case 1:
			printFigure1()
		case 2:
			printFigure2()
		case 3:
			printFigure3()
		case 4:
			printFigure4()
		case 5:
			printFigure5()
		default:
			fmt.Fprintf(os.Stderr, "musicfigs: no figure %d\n", f)
			os.Exit(2)
		}
	}
}

func printFigure1() {
	fmt.Println("=== Figure 1: D4M sparse associative array E (exploded music table) ===")
	e := dataset.MusicIncidence()
	fmt.Print(assoc.Format(e, value.FormatFloat))
	fmt.Printf("(%d rows × %d columns, %d entries)\n\n", e.RowKeys().Len(), e.ColKeys().Len(), e.NNZ())
}

func printFigure2() {
	fmt.Println("=== Figure 2: sub-arrays E1 = E(:,'Genre|*') and E2 = E(:,'Writer|*') ===")
	e1, e2 := dataset.MusicE1E2()
	fmt.Println("E1:")
	fmt.Print(assoc.Format(e1, value.FormatFloat))
	fmt.Println("\nE2:")
	fmt.Print(assoc.Format(e2, value.FormatFloat))
	fmt.Println()
}

func printCorrelations(e1, e2 *assoc.Array[float64]) {
	for _, ops := range semiring.Figure3Pairs() {
		a, err := assoc.Correlate(e1, e2, ops, assoc.MulOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "musicfigs:", err)
			os.Exit(1)
		}
		fmt.Printf("E1ᵀ %s E2:\n", ops.Name)
		fmt.Print(assoc.Format(a, value.FormatFloat))
		fmt.Println()
	}
}

func printFigure3() {
	fmt.Println("=== Figure 3: E1ᵀ ⊕.⊗ E2 under seven operator pairs (all weights 1) ===")
	e1, e2 := dataset.MusicE1E2()
	printCorrelations(e1, e2)
}

func printFigure4() {
	fmt.Println("=== Figure 4: E1 re-weighted (Electronic=1, Pop=2, Rock=3) ===")
	fmt.Print(assoc.Format(dataset.MusicE1Weighted(), value.FormatFloat))
	fmt.Println()
}

func printFigure5() {
	fmt.Println("=== Figure 5: E1ᵀ ⊕.⊗ E2 with re-weighted E1 ===")
	_, e2 := dataset.MusicE1E2()
	printCorrelations(dataset.MusicE1Weighted(), e2)
}

func printProvenance() {
	fmt.Println("=== Provenance form of Figure 3: E1ᵀ E2 with entries = connecting tracks ===")
	e1, e2 := dataset.MusicE1E2()
	p, err := assoc.CorrelateKeys(e1, e2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "musicfigs:", err)
		os.Exit(1)
	}
	fmt.Print(assoc.Format(p, func(s value.Set) string { return fmt.Sprintf("%d", s.Len()) }))
	fmt.Println("\n(cell values show |connecting track set|; full sets below)")
	p.Iterate(func(genre, writer string, tracks value.Set) {
		fmt.Printf("%s × %s: %s\n", genre, writer, tracks)
	})
}

func checkFigures() error {
	e1, e2 := dataset.MusicE1E2()
	e1w := dataset.MusicE1Weighted()
	eq := value.Float64Equal
	for figName, cfg := range map[string]struct {
		e1       *assoc.Array[float64]
		expected map[string]*assoc.Array[float64]
	}{
		"Figure 3": {e1, dataset.Figure3Expected()},
		"Figure 5": {e1w, dataset.Figure5Expected()},
	} {
		for _, ops := range semiring.Figure3Pairs() {
			got, err := assoc.Correlate(cfg.e1, e2, ops, assoc.MulOptions{})
			if err != nil {
				return err
			}
			if !got.Equal(cfg.expected[ops.Name], eq) {
				return fmt.Errorf("%s under %s does not match the paper", figName, ops.Name)
			}
		}
	}
	return nil
}
