// Command graphbench times adjacency construction over synthetic
// workloads — the scaling experiment (E11). It sweeps generator sizes,
// backends, and worker counts, and prints one row per configuration:
//
//	generator  vertices  edges  semiring  backend  workers  nnz  build_time
//
// Usage:
//
//	graphbench                       # default R-MAT sweep, all backends
//	graphbench -gen er -n 2000 -p 0.002
//	graphbench -gen rmat -scale 12 -ef 8 -backend parallel -workers 8
//	graphbench -gen stream -scale 12 -deltas 100
//	graphbench -gen algo             # algorithm kernels, assoc vs CSR
//	graphbench -json BENCH.json      # also write a machine-readable baseline
//
// The stream workload measures incremental maintenance: a warm
// adjacency view absorbs -deltas batches of 1% fresh edges each, and
// two rows come out — backend "stream_append" (mean wall time per
// delta-batch Append) and "stream_rebuild" (what the same delta would
// cost with a full Correlate rebuild at final size).
//
// The algo workload times the graph algorithms (BFS, SSSP, PageRank)
// on rmat-s12 and rmat-s14 adjacency arrays, one row per algorithm per
// execution path: backend "algo_<name>_assoc" iterates the map-backed
// assoc.Mul reference, backend "algo_<name>_csr" runs the CSR-native
// integer-id kernels. Both paths are cross-checked for equal results
// before their timings are reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"adjarray/internal/algo"
	"adjarray/internal/assoc"
	"adjarray/internal/core"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/render"
	"adjarray/internal/semiring"
	"adjarray/internal/stream"
	"adjarray/internal/value"
)

// jsonRow is one configuration's result in the -json baseline file.
type jsonRow struct {
	Generator string `json:"generator"`
	Vertices  int    `json:"vertices"`
	Edges     int    `json:"edges"`
	Semiring  string `json:"semiring"`
	Backend   string `json:"backend"`
	Workers   int    `json:"workers"`
	NNZ       int    `json:"nnz"`
	BuildNs   int64  `json:"build_ns"`
}

// jsonBaseline is the schema of the committed BENCH_*.json trajectory
// files: enough environment context to compare runs, one row per
// configuration.
type jsonBaseline struct {
	Timestamp  string    `json:"timestamp"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Seed       int64     `json:"seed"`
	Rows       []jsonRow `json:"rows"`
}

func main() {
	gen := flag.String("gen", "sweep", "workload: rmat | er | bipartite | stream | algo | sweep")
	deltas := flag.Int("deltas", 100, "stream workload: number of 1%% delta batches")
	scale := flag.Int("scale", 10, "R-MAT scale (2^scale vertices)")
	ef := flag.Int("ef", 8, "R-MAT edge factor")
	n := flag.Int("n", 1000, "Erdős–Rényi / bipartite vertex count")
	p := flag.Float64("p", 0.005, "Erdős–Rényi edge probability")
	sr := flag.String("semiring", "+.*", "operator pair")
	backend := flag.String("backend", "", "single backend (default: all)")
	workers := flag.Int("workers", 0, "parallel backend workers (0 = all cores)")
	seed := flag.Int64("seed", 1, "generator seed")
	jsonPath := flag.String("json", "", "also write results as JSON to this path")
	reps := flag.Int("reps", 1, "repetitions per configuration (fastest kept)")
	verify := flag.Bool("verify", false,
		"validate every result against a correctness oracle instead of trusting the fast path: "+
			"the dense Definition I.3 product when affordable, the serial two-phase reference otherwise; "+
			"the stream workload is checked against a full rebuild (exit 1 on divergence)")
	flag.Parse()

	if _, ok := semiring.Lookup(*sr); !ok {
		fmt.Fprintf(os.Stderr, "graphbench: unknown semiring %q\n", *sr)
		os.Exit(2)
	}

	var rows [][]string
	var jrows []jsonRow
	run := func(name string, g *graph.Graph) {
		backends := []core.Backend{core.BackendCSR, core.BackendParallel, core.BackendTStore}
		if *backend != "" {
			backends = []core.Backend{core.Backend(*backend)}
		}
		one := func(graph.Edge) float64 { return 1 }
		eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench:", err)
			os.Exit(1)
		}
		var oracle *assoc.Array[float64]
		oracleName := ""
		if *verify {
			// The literal Definition I.3 oracle costs O(V²·E); past a
			// budget fall back to the serial two-phase reference, which
			// the conformance harness keeps pinned to the oracle.
			oracleName = string(core.BackendDense)
			if v, e := g.Vertices().Len(), g.NumEdges(); int64(v)*int64(v)*int64(e) > 1<<27 {
				oracleName = string(core.BackendCSR)
			}
			r, err := core.Build(core.Request{Eout: eout, Ein: ein, Semiring: *sr, Backend: core.Backend(oracleName)})
			if err != nil {
				fmt.Fprintln(os.Stderr, "graphbench: verify oracle:", err)
				os.Exit(1)
			}
			oracle = r.Adjacency
		}
		for _, b := range backends {
			var res *core.Result
			var elapsed time.Duration
			for rep := 0; rep < *reps || rep == 0; rep++ {
				start := time.Now()
				r, err := core.Build(core.Request{
					Eout: eout, Ein: ein, Semiring: *sr, Backend: b, Workers: *workers,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "graphbench:", err)
					os.Exit(1)
				}
				if e := time.Since(start); res == nil || e < elapsed {
					res, elapsed = r, e
				}
			}
			if oracle != nil {
				if diff := assoc.Diff(oracle, res.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
					fmt.Fprintf(os.Stderr, "graphbench: VERIFY FAILED: backend %s diverges from %s oracle on %s: %s\n",
						b, oracleName, name, diff)
					os.Exit(1)
				}
			}
			rows = append(rows, []string{
				name,
				fmt.Sprint(g.Vertices().Len()),
				fmt.Sprint(g.NumEdges()),
				*sr,
				string(b),
				fmt.Sprint(*workers),
				fmt.Sprint(res.Adjacency.NNZ()),
				elapsed.Round(10 * time.Microsecond).String(),
			})
			jrows = append(jrows, jsonRow{
				Generator: name,
				Vertices:  g.Vertices().Len(),
				Edges:     g.NumEdges(),
				Semiring:  *sr,
				Backend:   string(b),
				Workers:   *workers,
				NNZ:       res.Adjacency.NNZ(),
				BuildNs:   elapsed.Nanoseconds(),
			})
		}
	}

	// runStream measures the incremental-maintenance arm: a warm view of
	// g absorbs `deltas` batches of 1% fresh edges (endpoints resampled
	// from the graph, keys continuing past the log). Row
	// "stream_append" is the mean per-batch Append wall time; row
	// "stream_rebuild" is one full Correlate at the final log size —
	// what a rebuild-per-delta system would pay per batch.
	runStream := func(name string, g *graph.Graph, deltas int) {
		sg := rand.New(rand.NewSource(*seed + 1))
		es := g.Edges()
		per := len(es) / 100
		if per == 0 {
			per = 1
		}
		one := func(graph.Edge) float64 { return 1 }
		eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench:", err)
			os.Exit(1)
		}
		entry, _ := semiring.Lookup(*sr)
		v, err := stream.FromIncidence(eout, ein, entry.Ops, stream.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench:", err)
			os.Exit(1)
		}
		seq := len(es)
		batch := make([]stream.Edge[float64], per)
		nextBatch := func() []stream.Edge[float64] {
			for i := range batch {
				e := es[sg.Intn(len(es))]
				batch[i] = stream.Weighted(fmt.Sprintf("e%08d", seq), e.Src, e.Dst, 1.0, 1)
				seq++
			}
			return batch
		}
		var appendTotal time.Duration
		for d := 0; d < deltas; d++ {
			b := nextBatch()
			start := time.Now()
			if err := v.Append(b); err != nil {
				fmt.Fprintln(os.Stderr, "graphbench:", err)
				os.Exit(1)
			}
			appendTotal += time.Since(start)
		}
		snap, err := v.Snapshot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench:", err)
			os.Exit(1)
		}
		meanAppend := appendTotal / time.Duration(deltas)

		var rebuild time.Duration
		var rebuilt *assoc.Array[float64]
		for rep := 0; rep < *reps || rep == 0; rep++ {
			start := time.Now()
			r, err := assoc.Correlate(snap.Eout, snap.Ein, entry.Ops, assoc.MulOptions{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "graphbench:", err)
				os.Exit(1)
			}
			if e := time.Since(start); rep == 0 || e < rebuild {
				rebuild = e
			}
			rebuilt = r
		}
		if *verify {
			if diff := assoc.Diff(rebuilt, snap.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
				fmt.Fprintf(os.Stderr, "graphbench: VERIFY FAILED: incremental view diverges from full rebuild on %s: %s\n",
					name, diff)
				os.Exit(1)
			}
		}
		for _, row := range []struct {
			backend string
			elapsed time.Duration
		}{{"stream_append", meanAppend}, {"stream_rebuild", rebuild}} {
			rows = append(rows, []string{
				name, fmt.Sprint(g.Vertices().Len()), fmt.Sprint(snap.Edges), *sr,
				row.backend, "1", fmt.Sprint(snap.Adjacency.NNZ()),
				row.elapsed.Round(time.Microsecond).String(),
			})
			jrows = append(jrows, jsonRow{
				Generator: name, Vertices: g.Vertices().Len(), Edges: snap.Edges,
				Semiring: *sr, Backend: row.backend, Workers: 1,
				NNZ: snap.Adjacency.NNZ(), BuildNs: row.elapsed.Nanoseconds(),
			})
		}
	}

	// runAlgo measures the algorithm arms: the assoc.Mul reference loop
	// against the CSR-native kernels on one adjacency array, with the
	// results differentially checked before timings count.
	runAlgo := func(name string, g *graph.Graph) {
		one := func(graph.Edge) float64 { return 1 }
		eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench:", err)
			os.Exit(1)
		}
		res, err := core.Build(core.Request{Eout: eout, Ein: ein, Semiring: *sr, Backend: core.BackendCSR})
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench:", err)
			os.Exit(1)
		}
		adj := res.Adjacency
		cg, err := algo.FromArray(adj)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench:", err)
			os.Exit(1)
		}
		// Deterministic high-degree source.
		src := adj.RowKeys().Key(0)
		best := -1
		for i := 0; i < adj.RowKeys().Len(); i++ {
			if d := adj.Matrix().RowNNZ(i); d > best {
				best, src = d, adj.RowKeys().Key(i)
			}
		}
		const damping, tol, prIters = 0.85, 1e-10, 30
		arms := []struct {
			backend string
			run     func() (any, error)
		}{
			{"algo_bfs_assoc", func() (any, error) { return algo.BFSLevels(adj, src) }},
			{"algo_bfs_csr", func() (any, error) { return cg.BFSLevels(src) }},
			{"algo_sssp_assoc", func() (any, error) { return algo.SSSP(adj, src) }},
			{"algo_sssp_csr", func() (any, error) { return cg.SSSP(src) }},
			{"algo_pagerank_assoc", func() (any, error) {
				rank, _, err := algo.PageRank(adj, damping, tol, prIters)
				return rank, err
			}},
			{"algo_pagerank_csr", func() (any, error) {
				rank, _, err := cg.PageRank(damping, tol, prIters)
				return rank, err
			}},
		}
		results := make([]any, len(arms))
		for i, arm := range arms {
			var elapsed time.Duration
			for rep := 0; rep < *reps || rep == 0; rep++ {
				start := time.Now()
				out, err := arm.run()
				if err != nil {
					fmt.Fprintf(os.Stderr, "graphbench: %s: %v\n", arm.backend, err)
					os.Exit(1)
				}
				if e := time.Since(start); rep == 0 || e < elapsed {
					elapsed = e
				}
				results[i] = out
			}
			// Each csr arm must reproduce its assoc oracle exactly.
			if i%2 == 1 && fmt.Sprintf("%v", results[i]) != fmt.Sprintf("%v", results[i-1]) {
				fmt.Fprintf(os.Stderr, "graphbench: VERIFY FAILED: %s diverges from %s on %s\n",
					arm.backend, arms[i-1].backend, name)
				os.Exit(1)
			}
			rows = append(rows, []string{
				name, fmt.Sprint(g.Vertices().Len()), fmt.Sprint(g.NumEdges()), *sr,
				arm.backend, "1", fmt.Sprint(adj.NNZ()),
				elapsed.Round(time.Microsecond).String(),
			})
			jrows = append(jrows, jsonRow{
				Generator: name, Vertices: g.Vertices().Len(), Edges: g.NumEdges(),
				Semiring: *sr, Backend: arm.backend, Workers: 1,
				NNZ: adj.NNZ(), BuildNs: elapsed.Nanoseconds(),
			})
		}
	}

	r := rand.New(rand.NewSource(*seed))
	switch *gen {
	case "rmat":
		run("rmat", dataset.RMAT(r, *scale, *ef))
	case "er":
		run("er", dataset.ErdosRenyi(r, *n, *p))
	case "bipartite":
		run("bipartite", dataset.Bipartite(r, *n, *n, *n**ef))
	case "stream":
		runStream(fmt.Sprintf("rmat-s%d", *scale), dataset.RMAT(r, *scale, *ef), *deltas)
	case "algo":
		for _, s := range []int{12, 14} {
			runAlgo(fmt.Sprintf("rmat-s%d", s), dataset.RMAT(rand.New(rand.NewSource(*seed)), s, *ef))
		}
	case "sweep":
		for _, s := range []int{8, 10, 12} {
			run(fmt.Sprintf("rmat-s%d", s), dataset.RMAT(r, s, *ef))
		}
		run("er", dataset.ErdosRenyi(r, *n, *p))
		run("bipartite", dataset.Bipartite(r, *n, *n, 8**n))
		runStream("rmat-s12", dataset.RMAT(rand.New(rand.NewSource(*seed)), 12, *ef), *deltas)
	default:
		fmt.Fprintf(os.Stderr, "graphbench: unknown generator %q\n", *gen)
		os.Exit(2)
	}

	fmt.Print(render.Columns(
		[]string{"generator", "vertices", "edges", "semiring", "backend", "workers", "nnz", "build_time"},
		rows,
	))

	if *jsonPath != "" {
		baseline := jsonBaseline{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Seed:       *seed,
			Rows:       jrows,
		}
		data, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench: marshal:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "graphbench: write:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graphbench: wrote %s (%d rows)\n", *jsonPath, len(jrows))
	}
}
