// Command graphbench times adjacency construction over synthetic
// workloads — the scaling experiment (E11). It sweeps generator sizes,
// backends, and worker counts, and prints one row per configuration:
//
//	generator  vertices  edges  semiring  backend  workers  nnz  build_time  allocs_op  kb_op
//
// Usage:
//
//	graphbench                       # default R-MAT sweep, all backends
//	graphbench -gen er -n 2000 -p 0.002
//	graphbench -gen rmat -scale 12 -ef 8 -backend parallel -workers 8
//	graphbench -gen rmat -scale 14 -workersweep 1,2,4,8
//	graphbench -gen stream -scale 12 -deltas 100
//	graphbench -gen durable -scale 12 -deltas 100   # WAL fsync policies + recovery
//	graphbench -gen shard -scale 14 -deltas 40      # sharded vs single-view ingest
//	graphbench -gen algo             # algorithm kernels, assoc vs CSR
//	graphbench -gen bench4 -json BENCH_4.json   # the committed scaling artifact
//	graphbench -gen durable -json BENCH_5.json  # the committed durability artifact
//	graphbench -cpuprofile cpu.out -memprofile mem.out ...
//
// Every row records wall time plus allocation cost (allocs and KiB per
// operation, from runtime.MemStats deltas around the timed section), so
// a perf regression is diagnosable from the JSON artifact alone; the
// -cpuprofile/-memprofile flags capture pprof profiles of the whole run
// when the artifact alone isn't enough.
//
// The stream workload measures incremental maintenance: a warm
// adjacency view absorbs -deltas batches of 1% fresh edges each, and
// three rows come out — backend "stream_append" (mean wall time per
// delta-batch Append), "stream_materialize" (one backlog fold of all
// -deltas batches into the main adjacency, the Snapshot-time cost), and
// "stream_rebuild" (what the same delta would cost with a full
// Correlate rebuild at final size).
//
// The bench4 workload is the committed BENCH_4.json matrix: scales
// 12/14/16 × workers 1/2/4/8 over the parallel construction backend and
// both stream arms.
//
// The durable workload is the committed BENCH_5.json matrix: the stream
// append workload through the write-ahead log under each fsync policy
// ("durable_append_batch" syncs every append, "_interval" every 100ms,
// "_off" never), the covering checkpoint write ("durable_checkpoint"),
// and both recovery shapes ("durable_recover_replay" re-applies the
// whole log, "durable_recover_checkpoint" loads the checkpoint).
//
// The shard workload is the committed BENCH_6.json matrix: 4 concurrent
// producers append delta batches through the goroutine-sharded view at
// shards 1/2/4/8 ("sharded_append", with shards=1 the single-view
// baseline) plus the scatter-gather materialize latency at each count
// ("sharded_materialize"). The workers column carries the shard count.
//
// The algo workload times the graph algorithms (BFS, SSSP, PageRank)
// on rmat-s12 and rmat-s14 adjacency arrays, one row per algorithm per
// execution path: backend "algo_<name>_assoc" iterates the map-backed
// assoc.Mul reference, backend "algo_<name>_csr" runs the CSR-native
// integer-id kernels. Both paths are cross-checked for equal results
// before their timings are reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"adjarray/internal/algo"
	"adjarray/internal/assoc"
	"adjarray/internal/core"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/render"
	"adjarray/internal/semiring"
	"adjarray/internal/stream"
	"adjarray/internal/value"
	"adjarray/internal/wal"
)

// jsonRow is one configuration's result in the -json baseline file.
type jsonRow struct {
	Generator string `json:"generator"`
	Vertices  int    `json:"vertices"`
	Edges     int    `json:"edges"`
	Semiring  string `json:"semiring"`
	Backend   string `json:"backend"`
	Workers   int    `json:"workers"`
	NNZ       int    `json:"nnz"`
	BuildNs   int64  `json:"build_ns"`
	AllocsOp  int64  `json:"allocs_per_op"`
	BytesOp   int64  `json:"bytes_per_op"`
}

// jsonBaseline is the schema of the committed BENCH_*.json trajectory
// files: enough environment context to compare runs, one row per
// configuration.
type jsonBaseline struct {
	Timestamp  string    `json:"timestamp"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Seed       int64     `json:"seed"`
	Rows       []jsonRow `json:"rows"`
}

// measure is one timed section with its allocation cost.
type measure struct {
	elapsed time.Duration
	allocs  int64
	bytes   int64
}

// timed measures fn's wall time and allocation deltas. MemStats reads
// cost microseconds — noise against the millisecond-scale sections
// measured here.
func timed(fn func() error) (measure, error) {
	// Start every timed section from a collected heap: GC pauses land
	// inside whichever section happens to trip the pacer, which across
	// a multi-configuration sweep biases whole arms (the first
	// configuration grows the heap toward steady state and pays for
	// it). One explicit collection per section makes arms comparable;
	// allocation costs are still reported per arm.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return measure{
		elapsed: elapsed,
		allocs:  int64(m1.Mallocs - m0.Mallocs),
		bytes:   int64(m1.TotalAlloc - m0.TotalAlloc),
	}, err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphbench:", err)
	os.Exit(1)
}

func parseWorkerSweep(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := strconv.Atoi(f)
		if err != nil || w < 1 {
			fmt.Fprintf(os.Stderr, "graphbench: bad -workersweep entry %q\n", f)
			os.Exit(2)
		}
		out = append(out, w)
	}
	return out
}

func main() {
	gen := flag.String("gen", "sweep", "workload: rmat | er | bipartite | stream | shard | durable | algo | bench4 | sweep")
	deltas := flag.Int("deltas", 100, "stream workload: number of 1%% delta batches")
	scale := flag.Int("scale", 10, "R-MAT scale (2^scale vertices)")
	ef := flag.Int("ef", 8, "R-MAT edge factor")
	n := flag.Int("n", 1000, "Erdős–Rényi / bipartite vertex count")
	p := flag.Float64("p", 0.005, "Erdős–Rényi edge probability")
	sr := flag.String("semiring", "+.*", "operator pair")
	backend := flag.String("backend", "", "single backend (default: all)")
	workers := flag.Int("workers", 0, "parallel backend workers (0 = all cores)")
	workerSweepFlag := flag.String("workersweep", "", "comma-separated worker counts; each configuration runs once per count (e.g. 1,2,4,8)")
	flopFloor := flag.Int64("flopfloor", 0, "parallel serial-fallback flop threshold (0 = default, -1 = always parallel)")
	seed := flag.Int64("seed", 1, "generator seed")
	jsonPath := flag.String("json", "", "also write results as JSON to this path")
	reps := flag.Int("reps", 1, "repetitions per configuration (fastest kept)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile (after GC) to this path at exit")
	shardSpeedup := flag.Float64("shardspeedup", 0,
		"shard workload: fail unless sharded_append at 4 shards is at least this many times faster than at 1 shard (0 disables)")
	verify := flag.Bool("verify", false,
		"validate every result against a correctness oracle instead of trusting the fast path: "+
			"the dense Definition I.3 product when affordable, the serial two-phase reference otherwise; "+
			"the stream workload is checked against a full rebuild (exit 1 on divergence)")
	flag.Parse()

	if _, ok := semiring.Lookup(*sr); !ok {
		fmt.Fprintf(os.Stderr, "graphbench: unknown semiring %q\n", *sr)
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	sweep := parseWorkerSweep(*workerSweepFlag)
	if len(sweep) == 0 {
		sweep = []int{*workers}
	}

	var rows [][]string
	var jrows []jsonRow
	emit := func(name string, vertices, edges int, backend string, w, nnz int, m measure) {
		rows = append(rows, []string{
			name, fmt.Sprint(vertices), fmt.Sprint(edges), *sr, backend,
			fmt.Sprint(w), fmt.Sprint(nnz),
			m.elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(m.allocs),
			fmt.Sprintf("%.0f", float64(m.bytes)/1024),
		})
		jrows = append(jrows, jsonRow{
			Generator: name, Vertices: vertices, Edges: edges, Semiring: *sr,
			Backend: backend, Workers: w, NNZ: nnz,
			BuildNs: m.elapsed.Nanoseconds(), AllocsOp: m.allocs, BytesOp: m.bytes,
		})
	}

	runOn := func(name string, g *graph.Graph, backends []core.Backend, sweep []int) {
		one := func(graph.Edge) float64 { return 1 }
		eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
		if err != nil {
			fail(err)
		}
		var oracle *assoc.Array[float64]
		oracleName := ""
		if *verify {
			// The literal Definition I.3 oracle costs O(V²·E); past a
			// budget fall back to the serial two-phase reference, which
			// the conformance harness keeps pinned to the oracle.
			oracleName = string(core.BackendDense)
			if v, e := g.Vertices().Len(), g.NumEdges(); int64(v)*int64(v)*int64(e) > 1<<27 {
				oracleName = string(core.BackendCSR)
			}
			r, err := core.Build(core.Request{Eout: eout, Ein: ein, Semiring: *sr, Backend: core.Backend(oracleName)})
			if err != nil {
				fail(err)
			}
			oracle = r.Adjacency
		}
		for _, b := range backends {
			ws := sweep
			if b != core.BackendParallel && len(sweep) > 1 {
				// Only the parallel backend varies with the worker count;
				// one row is enough for the others, labelled with the
				// plain -workers value (the historical BENCH_1 convention)
				// rather than a sweep entry it did not use.
				ws = []int{*workers}
			}
			for _, w := range ws {
				var res *core.Result
				var best measure
				for rep := 0; rep < *reps || rep == 0; rep++ {
					var r *core.Result
					m, err := timed(func() error {
						var err error
						r, err = core.Build(core.Request{
							Eout: eout, Ein: ein, Semiring: *sr, Backend: b,
							Workers: w, FlopFloor: *flopFloor,
						})
						return err
					})
					if err != nil {
						fail(err)
					}
					if res == nil || m.elapsed < best.elapsed {
						res, best = r, m
					}
				}
				if oracle != nil {
					if diff := assoc.Diff(oracle, res.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
						fmt.Fprintf(os.Stderr, "graphbench: VERIFY FAILED: backend %s diverges from %s oracle on %s: %s\n",
							b, oracleName, name, diff)
						os.Exit(1)
					}
				}
				emit(name, g.Vertices().Len(), g.NumEdges(), string(b), w, res.Adjacency.NNZ(), best)
			}
		}
	}

	// runStream measures the incremental-maintenance arms at one worker
	// count. A warm view of g absorbs `deltas` batches of 1% fresh edges
	// (endpoints resampled from the graph, keys continuing past the
	// log):
	//
	//   - "stream_append": mean per-batch Append wall time and
	//     allocations, with the default pending budget (folds included,
	//     amortized);
	//   - "stream_materialize": one backlog fold of all `deltas` batches
	//     (appended under an unbounded budget, then forced by Snapshot);
	//   - "stream_rebuild": one full Correlate at the final log size —
	//     what a rebuild-per-delta system would pay per batch.
	runStream := func(name string, g *graph.Graph, deltas, w int, emitRebuild bool) {
		sg := rand.New(rand.NewSource(*seed + 1))
		es := g.Edges()
		per := len(es) / 100
		if per == 0 {
			per = 1
		}
		one := func(graph.Edge) float64 { return 1 }
		eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
		if err != nil {
			fail(err)
		}
		entry, _ := semiring.Lookup(*sr)
		mulOpt := assoc.MulOptions{Workers: w, FlopFloor: *flopFloor}
		if w <= 1 {
			mulOpt.Workers = 0
		}
		v, err := stream.FromIncidence(eout, ein, entry.Ops, stream.Options{Mul: mulOpt})
		if err != nil {
			fail(err)
		}
		// Batches are pre-generated so the timed sections measure the
		// view, not fmt.Sprintf.
		seq := len(es)
		nextBatch := func() []stream.Edge[float64] {
			batch := make([]stream.Edge[float64], per)
			for i := range batch {
				e := es[sg.Intn(len(es))]
				batch[i] = stream.Weighted(fmt.Sprintf("e%08d", seq), e.Src, e.Dst, 1.0, 1)
				seq++
			}
			return batch
		}
		pregen := func() [][]stream.Edge[float64] {
			bs := make([][]stream.Edge[float64], deltas)
			for d := range bs {
				bs[d] = nextBatch()
			}
			return bs
		}
		var meanAppend measure
		for rep := 0; rep < *reps || rep == 0; rep++ {
			batches := pregen()
			appendTotal, err := timed(func() error {
				for _, b := range batches {
					if err := v.Append(b); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				fail(err)
			}
			m := measure{
				elapsed: appendTotal.elapsed / time.Duration(deltas),
				allocs:  appendTotal.allocs / int64(deltas),
				bytes:   appendTotal.bytes / int64(deltas),
			}
			if rep == 0 || m.elapsed < meanAppend.elapsed {
				meanAppend = m
			}
		}
		snap, err := v.Snapshot()
		if err != nil {
			fail(err)
		}

		// Materialize arm: batches queue under an effectively unbounded
		// budget, then one Snapshot folds the whole backlog. Repetitions
		// refill the backlog with fresh batches (the log keeps growing —
		// pessimistic, never flattering).
		vm, err := stream.FromIncidence(snap.Eout, snap.Ein, entry.Ops, stream.Options{
			Mul: mulOpt, PendingBudget: 1 << 30,
		})
		if err != nil {
			fail(err)
		}
		var matBest measure
		for rep := 0; rep < *reps || rep == 0; rep++ {
			for _, b := range pregen() {
				if err := vm.Append(b); err != nil {
					fail(err)
				}
			}
			m, err := timed(func() error {
				_, err := vm.Snapshot()
				return err
			})
			if err != nil {
				fail(err)
			}
			if rep == 0 || m.elapsed < matBest.elapsed {
				matBest = m
			}
		}

		// The rebuild reference is always the serial Correlate — it does
		// not vary with the worker count, so sweeps emit it once.
		var rebuildBest measure
		var rebuilt *assoc.Array[float64]
		for rep := 0; (emitRebuild || *verify) && (rep < *reps || rep == 0); rep++ {
			var r *assoc.Array[float64]
			m, err := timed(func() error {
				var err error
				r, err = assoc.Correlate(snap.Eout, snap.Ein, entry.Ops, assoc.MulOptions{})
				return err
			})
			if err != nil {
				fail(err)
			}
			if rep == 0 || m.elapsed < rebuildBest.elapsed {
				rebuildBest = m
			}
			rebuilt = r
		}
		if *verify {
			if diff := assoc.Diff(rebuilt, snap.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
				fmt.Fprintf(os.Stderr, "graphbench: VERIFY FAILED: incremental view diverges from full rebuild on %s: %s\n",
					name, diff)
				os.Exit(1)
			}
		}
		V := g.Vertices().Len()
		// Serial stream rows are labelled workers=1 (the BENCH_2/3
		// convention), so benchdiff matches them across baselines.
		label := w
		if label < 1 {
			label = 1
		}
		emit(name, V, snap.Edges, "stream_append", label, snap.Adjacency.NNZ(), meanAppend)
		emit(name, V, snap.Edges, "stream_materialize", label, snap.Adjacency.NNZ(), matBest)
		if emitRebuild {
			emit(name, V, snap.Edges, "stream_rebuild", 1, snap.Adjacency.NNZ(), rebuildBest)
		}
	}

	// runDurable measures the durability tax: the stream arm's
	// delta-batch append workload run through a WAL-backed view under
	// each fsync policy (per-batch fsync, interval, none), plus the
	// checkpoint write and both recovery shapes — a cold replay of the
	// whole log and a load of the covering checkpoint. Every arm gets a
	// fresh store directory; recovered state is differentially checked
	// against the in-memory view under -verify.
	runDurable := func(name string, g *graph.Graph, deltas int) {
		sg := rand.New(rand.NewSource(*seed + 1))
		es := g.Edges()
		per := len(es) / 100
		if per == 0 {
			per = 1
		}
		entry, _ := semiring.Lookup(*sr)
		V := g.Vertices().Len()
		pregen := func() [][]stream.Edge[float64] {
			seq := 0
			bs := make([][]stream.Edge[float64], deltas)
			for d := range bs {
				batch := make([]stream.Edge[float64], per)
				for i := range batch {
					e := es[sg.Intn(len(es))]
					batch[i] = stream.Weighted(fmt.Sprintf("e%08d", seq), e.Src, e.Dst, 1.0, 1)
					seq++
				}
				bs[d] = batch
			}
			return bs
		}
		openStore := func(p wal.SyncPolicy) (*stream.DurableView[float64], string) {
			dir, err := os.MkdirTemp("", "graphbench-durable-*")
			if err != nil {
				fail(err)
			}
			d, err := stream.Open(dir, entry.Ops, stream.DurableOptions[float64]{
				WAL: wal.Options{Policy: p},
			})
			if err != nil {
				fail(err)
			}
			return d, dir
		}
		arms := []struct {
			backend string
			policy  wal.SyncPolicy
		}{
			{"durable_append_batch", wal.SyncEveryAppend},
			{"durable_append_interval", wal.SyncInterval},
			{"durable_append_off", wal.SyncNever},
		}
		// One store per policy survives the append arms: the off store
		// keeps its bare log for the replay arm, the batch store gains a
		// checkpoint for the checkpoint arms.
		var replayDir, ckptDir string
		var nnz, edges int
		for _, arm := range arms {
			var best measure
			var keepDir string
			for rep := 0; rep < *reps || rep == 0; rep++ {
				d, dir := openStore(arm.policy)
				batches := pregen()
				total, err := timed(func() error {
					for _, b := range batches {
						if err := d.Append(b); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					fail(err)
				}
				snap, err := d.Snapshot()
				if err != nil {
					fail(err)
				}
				nnz, edges = snap.Adjacency.NNZ(), snap.Edges
				if *verify {
					want, err := assoc.Correlate(snap.Eout, snap.Ein, entry.Ops, assoc.MulOptions{})
					if err != nil {
						fail(err)
					}
					if diff := assoc.Diff(want, snap.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
						fmt.Fprintf(os.Stderr, "graphbench: VERIFY FAILED: durable view diverges from full rebuild on %s: %s\n", name, diff)
						os.Exit(1)
					}
				}
				if err := d.Close(); err != nil {
					fail(err)
				}
				m := measure{
					elapsed: total.elapsed / time.Duration(deltas),
					allocs:  total.allocs / int64(deltas),
					bytes:   total.bytes / int64(deltas),
				}
				if rep == 0 || m.elapsed < best.elapsed {
					best = m
				}
				if keepDir != "" {
					os.RemoveAll(keepDir)
				}
				keepDir = dir
			}
			emit(name, V, edges, arm.backend, 1, nnz, best)
			switch arm.policy {
			case wal.SyncNever:
				replayDir = keepDir
			case wal.SyncEveryAppend:
				ckptDir = keepDir
			default:
				os.RemoveAll(keepDir)
			}
		}
		defer os.RemoveAll(replayDir)
		defer os.RemoveAll(ckptDir)

		// Recovery arm 1: cold replay of the bare log (no checkpoint).
		var best measure
		for rep := 0; rep < *reps || rep == 0; rep++ {
			m, err := timed(func() error {
				d, err := stream.Open(replayDir, entry.Ops, stream.DurableOptions[float64]{})
				if err != nil {
					return err
				}
				return d.Close()
			})
			if err != nil {
				fail(err)
			}
			if rep == 0 || m.elapsed < best.elapsed {
				best = m
			}
		}
		emit(name, V, edges, "durable_recover_replay", 1, nnz, best)

		// Checkpoint arm: one covering checkpoint of the final state.
		{
			d, err := stream.Open(ckptDir, entry.Ops, stream.DurableOptions[float64]{})
			if err != nil {
				fail(err)
			}
			m, err := timed(d.Checkpoint)
			if err != nil {
				fail(err)
			}
			if err := d.Close(); err != nil {
				fail(err)
			}
			emit(name, V, edges, "durable_checkpoint", 1, nnz, m)
		}

		// Recovery arm 2: load the covering checkpoint (no tail).
		for rep := 0; rep < *reps || rep == 0; rep++ {
			m, err := timed(func() error {
				d, err := stream.Open(ckptDir, entry.Ops, stream.DurableOptions[float64]{})
				if err != nil {
					return err
				}
				return d.Close()
			})
			if err != nil {
				fail(err)
			}
			if rep == 0 || m.elapsed < best.elapsed {
				best = m
			}
		}
		emit(name, V, edges, "durable_recover_checkpoint", 1, nnz, best)
	}

	// runShard measures the goroutine-sharded ingest against the
	// single-view baseline: 4 concurrent producers push -deltas
	// delta-batches (auto-assigned keys — the adjserve front's write
	// shape) through a ShardedView at each shard count; shards=1 IS the
	// single-view path (one view, one lock), so the workers column
	// doubles as the shard axis and the 1-row is the baseline.
	//
	//   - "sharded_append": mean per-batch wall time across the
	//     producers (aggregate throughput is its inverse);
	//   - "sharded_materialize": one scatter-gather fold — every shard's
	//     backlog materialized and the per-shard adjacencies ⊕-merged
	//     into the gathered snapshot.
	runShard := func(name string, g *graph.Graph, deltas int, counts []int) {
		es := g.Edges()
		per := len(es) / 100
		if per == 0 {
			per = 1
		}
		entry, _ := semiring.Lookup(*sr)
		V := g.Vertices().Len()
		const producers = 4
		// Every call regenerates the SAME batches: all shard counts, reps,
		// and arms measure one workload, so the rows compare directly.
		pregen := func() [][][]stream.Edge[float64] {
			sg := rand.New(rand.NewSource(*seed + 2))
			lists := make([][][]stream.Edge[float64], producers)
			for d := 0; d < deltas; d++ {
				batch := make([]stream.Edge[float64], per)
				for i := range batch {
					e := es[sg.Intn(len(es))]
					batch[i] = stream.Weighted("", e.Src, e.Dst, 1.0, 1)
				}
				lists[d%producers] = append(lists[d%producers], batch)
			}
			return lists
		}
		appendAll := func(sv *stream.ShardedView[float64], lists [][][]stream.Edge[float64]) error {
			var wg sync.WaitGroup
			errs := make([]error, producers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for _, b := range lists[p] {
						if err := sv.Append(b); err != nil {
							errs[p] = err
							return
						}
					}
				}(p)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		}
		for _, n := range counts {
			var appendBest measure
			var nnz, edges int
			for rep := 0; rep < *reps || rep == 0; rep++ {
				sv := stream.NewShardedView(entry.Ops, stream.ShardedOptions{Shards: n})
				lists := pregen()
				total, err := timed(func() error { return appendAll(sv, lists) })
				if err != nil {
					fail(err)
				}
				m := measure{
					elapsed: total.elapsed / time.Duration(deltas),
					allocs:  total.allocs / int64(deltas),
					bytes:   total.bytes / int64(deltas),
				}
				if rep == 0 || m.elapsed < appendBest.elapsed {
					appendBest = m
				}
				snap, err := sv.Snapshot()
				if err != nil {
					fail(err)
				}
				merged, err := snap.Merged()
				if err != nil {
					fail(err)
				}
				nnz, edges = merged.Adjacency.NNZ(), merged.Edges
				if *verify {
					want, err := assoc.Correlate(merged.Eout, merged.Ein, entry.Ops, assoc.MulOptions{})
					if err != nil {
						fail(err)
					}
					if diff := assoc.Diff(want, merged.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
						fmt.Fprintf(os.Stderr, "graphbench: VERIFY FAILED: %d-shard gather diverges from full rebuild on %s: %s\n", n, name, diff)
						os.Exit(1)
					}
				}
			}
			emit(name, V, edges, "sharded_append", n, nnz, appendBest)

			// Materialize: the whole backlog queues (unbounded budget),
			// then one gather folds every shard and ⊕-merges.
			var matBest measure
			for rep := 0; rep < *reps || rep == 0; rep++ {
				sv := stream.NewShardedView(entry.Ops, stream.ShardedOptions{
					Shards: n,
					Stream: stream.Options{PendingBudget: 1 << 30},
				})
				if err := appendAll(sv, pregen()); err != nil {
					fail(err)
				}
				m, err := timed(func() error {
					snap, err := sv.Snapshot()
					if err != nil {
						return err
					}
					_, err = snap.Adjacency()
					return err
				})
				if err != nil {
					fail(err)
				}
				if rep == 0 || m.elapsed < matBest.elapsed {
					matBest = m
				}
			}
			emit(name, V, edges, "sharded_materialize", n, nnz, matBest)
		}
		if *shardSpeedup > 0 {
			var t1, t4 int64
			for _, r := range jrows {
				if r.Generator == name && r.Backend == "sharded_append" {
					switch r.Workers {
					case 1:
						t1 = r.BuildNs
					case 4:
						t4 = r.BuildNs
					}
				}
			}
			if t1 == 0 || t4 == 0 {
				fmt.Fprintln(os.Stderr, "graphbench: -shardspeedup needs the 1- and 4-shard sharded_append rows")
				os.Exit(1)
			}
			ratio := float64(t1) / float64(t4)
			fmt.Fprintf(os.Stderr, "graphbench: %s aggregate append speedup at 4 shards: %.2fx\n", name, ratio)
			if ratio < *shardSpeedup {
				fmt.Fprintf(os.Stderr, "graphbench: FAIL: speedup %.2fx < required %.2fx\n", ratio, *shardSpeedup)
				os.Exit(1)
			}
		}
	}

	// runAlgo measures the algorithm arms: the assoc.Mul reference loop
	// against the CSR-native kernels on one adjacency array, with the
	// results differentially checked before timings count.
	runAlgo := func(name string, g *graph.Graph) {
		one := func(graph.Edge) float64 { return 1 }
		eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
		if err != nil {
			fail(err)
		}
		res, err := core.Build(core.Request{Eout: eout, Ein: ein, Semiring: *sr, Backend: core.BackendCSR})
		if err != nil {
			fail(err)
		}
		adj := res.Adjacency
		cg, err := algo.FromArray(adj)
		if err != nil {
			fail(err)
		}
		// Deterministic high-degree source.
		src := adj.RowKeys().Key(0)
		best := -1
		for i := 0; i < adj.RowKeys().Len(); i++ {
			if d := adj.Matrix().RowNNZ(i); d > best {
				best, src = d, adj.RowKeys().Key(i)
			}
		}
		const damping, tol, prIters = 0.85, 1e-10, 30
		arms := []struct {
			backend string
			run     func() (any, error)
		}{
			{"algo_bfs_assoc", func() (any, error) { return algo.BFSLevels(adj, src) }},
			{"algo_bfs_csr", func() (any, error) { return cg.BFSLevels(src) }},
			{"algo_sssp_assoc", func() (any, error) { return algo.SSSP(adj, src) }},
			{"algo_sssp_csr", func() (any, error) { return cg.SSSP(src) }},
			{"algo_pagerank_assoc", func() (any, error) {
				rank, _, err := algo.PageRank(adj, damping, tol, prIters)
				return rank, err
			}},
			{"algo_pagerank_csr", func() (any, error) {
				rank, _, err := cg.PageRank(damping, tol, prIters)
				return rank, err
			}},
		}
		results := make([]any, len(arms))
		for i, arm := range arms {
			var bestM measure
			for rep := 0; rep < *reps || rep == 0; rep++ {
				var out any
				m, err := timed(func() error {
					var err error
					out, err = arm.run()
					return err
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "graphbench: %s: %v\n", arm.backend, err)
					os.Exit(1)
				}
				if rep == 0 || m.elapsed < bestM.elapsed {
					bestM = m
				}
				results[i] = out
			}
			// Each csr arm must reproduce its assoc oracle exactly.
			if i%2 == 1 && fmt.Sprintf("%v", results[i]) != fmt.Sprintf("%v", results[i-1]) {
				fmt.Fprintf(os.Stderr, "graphbench: VERIFY FAILED: %s diverges from %s on %s\n",
					arm.backend, arms[i-1].backend, name)
				os.Exit(1)
			}
			emit(name, g.Vertices().Len(), g.NumEdges(), arm.backend, 1, adj.NNZ(), bestM)
		}
	}

	run := func(name string, g *graph.Graph) {
		backends := []core.Backend{core.BackendCSR, core.BackendParallel, core.BackendTStore}
		if *backend != "" {
			backends = []core.Backend{core.Backend(*backend)}
		}
		runOn(name, g, backends, sweep)
	}

	r := rand.New(rand.NewSource(*seed))
	switch *gen {
	case "rmat":
		run("rmat", dataset.RMAT(r, *scale, *ef))
	case "er":
		run("er", dataset.ErdosRenyi(r, *n, *p))
	case "bipartite":
		run("bipartite", dataset.Bipartite(r, *n, *n, *n**ef))
	case "stream":
		for i, w := range sweep {
			runStream(fmt.Sprintf("rmat-s%d", *scale), dataset.RMAT(rand.New(rand.NewSource(*seed)), *scale, *ef), *deltas, w, i == 0)
		}
	case "durable":
		runDurable(fmt.Sprintf("rmat-s%d", *scale), dataset.RMAT(rand.New(rand.NewSource(*seed)), *scale, *ef), *deltas)
	case "shard":
		runShard(fmt.Sprintf("rmat-s%d", *scale), dataset.RMAT(rand.New(rand.NewSource(*seed)), *scale, *ef), *deltas, []int{1, 2, 4, 8})
	case "algo":
		for _, s := range []int{12, 14} {
			runAlgo(fmt.Sprintf("rmat-s%d", s), dataset.RMAT(rand.New(rand.NewSource(*seed)), s, *ef))
		}
	case "bench4":
		// The committed BENCH_4.json matrix: construction + both stream
		// arms across scales and worker counts. The flag sweep (or its
		// 1/2/4/8 default) applies to every arm.
		ws := sweep
		if *workerSweepFlag == "" {
			ws = []int{1, 2, 4, 8}
		}
		for _, s := range []int{12, 14, 16} {
			name := fmt.Sprintf("rmat-s%d", s)
			g := dataset.RMAT(rand.New(rand.NewSource(*seed)), s, *ef)
			runOn(name, g, []core.Backend{core.BackendParallel}, ws)
			for i, w := range ws {
				runStream(name, g, *deltas, w, i == 0)
			}
		}
	case "sweep":
		for _, s := range []int{8, 10, 12} {
			run(fmt.Sprintf("rmat-s%d", s), dataset.RMAT(r, s, *ef))
		}
		run("er", dataset.ErdosRenyi(r, *n, *p))
		run("bipartite", dataset.Bipartite(r, *n, *n, 8**n))
		for i, w := range sweep {
			runStream("rmat-s12", dataset.RMAT(rand.New(rand.NewSource(*seed)), 12, *ef), *deltas, w, i == 0)
		}
	default:
		fmt.Fprintf(os.Stderr, "graphbench: unknown generator %q\n", *gen)
		os.Exit(2)
	}

	fmt.Print(render.Columns(
		[]string{"generator", "vertices", "edges", "semiring", "backend", "workers", "nnz", "build_time", "allocs_op", "kb_op"},
		rows,
	))

	if *jsonPath != "" {
		baseline := jsonBaseline{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Seed:       *seed,
			Rows:       jrows,
		}
		data, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "graphbench: wrote %s (%d rows)\n", *jsonPath, len(jrows))
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}
}
