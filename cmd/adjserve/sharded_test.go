package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"adjarray/internal/core"
	"adjarray/internal/stream"
)

func newShardedTestIngest(t *testing.T, shards int) *core.Ingest {
	t.Helper()
	ing, err := core.NewIngest(core.IngestOptions{Semiring: "+.*", BatchSize: 4, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return ing
}

// decodeEpochs pulls the epoch vector out of a response body.
func decodeEpochs(t *testing.T, body map[string]any) []int {
	t.Helper()
	raw, ok := body["epochs"].([]any)
	if !ok {
		t.Fatalf("response carries no epoch vector: %v", body)
	}
	epochs := make([]int, len(raw))
	for i, v := range raw {
		epochs[i] = int(v.(float64))
	}
	return epochs
}

// The epoch-pinning property: while multiple producers append to a
// 3-shard ingest, every /bfs and /pagerank response reports a single
// consistent epoch vector — the full shard count, each component
// monotonically non-decreasing across a reader's successive requests,
// and the scalar epoch equal to the vector's sum (one pinned snapshot
// answered the whole request; no response mixes shard A at epoch 7 with
// a later re-read of shard B). Run with -race: this is also the data-race
// gate for the scatter-gather serving path.
func TestEpochVectorPinnedDuringShardedIngest(t *testing.T) {
	const shards = 3
	ing := newShardedTestIngest(t, shards)
	sv := ing.Sharded()
	if sv == nil {
		t.Fatal("Shards: 3 did not produce a sharded ingest")
	}
	// Seed a known reachable pair so /bfs?src=v00 always resolves.
	seed := []stream.Edge[float64]{
		stream.Weighted("", "v00", "v01", 1.0, 1.0),
		stream.Weighted("", "v01", "v02", 1.0, 1.0),
	}
	if err := sv.Append(seed); err != nil {
		t.Fatal(err)
	}
	h := handler(ing)

	done := make(chan struct{})
	var readers sync.WaitGroup
	readerErr := make([]error, 4)
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			paths := []string{"/bfs?src=v00", "/pagerank?iters=10", "/triples?limit=5", "/at?src=v00&dst=v01"}
			last := make([]int, shards)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				path := paths[(i+w)%len(paths)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != http.StatusOK {
					readerErr[w] = fmt.Errorf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
					return
				}
				var body map[string]any
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					readerErr[w] = fmt.Errorf("GET %s: bad JSON: %v", path, err)
					return
				}
				epochs, ok := body["epochs"].([]any)
				if !ok || len(epochs) != shards {
					readerErr[w] = fmt.Errorf("GET %s: epoch vector %v, want %d components", path, body["epochs"], shards)
					return
				}
				sum := 0
				for s, v := range epochs {
					e := int(v.(float64))
					if e < last[s] {
						readerErr[w] = fmt.Errorf("GET %s: shard %d epoch went backwards: %d after %d", path, s, e, last[s])
						return
					}
					last[s] = e
					sum += e
				}
				if int(body["epoch"].(float64)) != sum {
					readerErr[w] = fmt.Errorf("GET %s: scalar epoch %v != vector sum %d", path, body["epoch"], sum)
					return
				}
			}
		}(w)
	}

	// Concurrent multi-shard ingest through the narrow-lock front (the
	// production write path), three producers.
	const producers, perProducer = 3, 300
	f := newFront(ing, 8)
	var writers sync.WaitGroup
	writerErr := make([]error, producers)
	for p := 0; p < producers; p++ {
		writers.Add(1)
		go func(p int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(40 + p)))
			for i := 0; i < perProducer; i++ {
				e := stream.Weighted("",
					fmt.Sprintf("v%02d", r.Intn(24)),
					fmt.Sprintf("v%02d", r.Intn(24)), 1.0, 1.0)
				if err := f.add(e); err != nil {
					writerErr[p] = err
					return
				}
			}
		}(p)
	}
	writers.Wait()
	close(done)
	readers.Wait()
	for _, err := range append(writerErr, readerErr...) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := f.flush(); err != nil {
		t.Fatal(err)
	}

	st := sv.Stats()
	if want := len(seed) + producers*perProducer; st.Edges != want {
		t.Fatalf("ingested %d edges, want %d", st.Edges, want)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/bfs?src=v00", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("final /bfs = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	finalEpochs := decodeEpochs(t, body)
	sum := 0
	for i, e := range finalEpochs {
		if e != st.Epochs[i] {
			t.Fatalf("final epoch vector %v != stats vector %v", finalEpochs, st.Epochs)
		}
		sum += e
	}
	if int(body["epoch"].(float64)) != sum {
		t.Fatalf("final scalar epoch %v != sum %d", body["epoch"], sum)
	}
}

// A sharded durable serving process across a restart: the first run
// ingests across per-shard WAL directories and closes (per-shard final
// checkpoints); the second adopts the recorded shard count, recovers
// every shard, and reports the durability vector on /healthz.
func TestShardedDurableRestartAndHealthz(t *testing.T) {
	dir := t.TempDir()
	open := func(shards int) *core.Ingest {
		t.Helper()
		ing, err := core.NewIngest(core.IngestOptions{Semiring: "+.*", BatchSize: 4, Shards: shards, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return ing
	}

	ing := open(3)
	for i := 0; i < 17; i++ {
		e := stream.Weighted("", fmt.Sprintf("v%02d", i%7), fmt.Sprintf("v%02d", (i+1)%7), 1.0, 1.0)
		if err := ing.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	// Shards: -1 (GOMAXPROCS) must still adopt the recorded count 3.
	ing = open(-1)
	defer ing.Close()
	sv := ing.Sharded()
	if sv == nil || !sv.Durable() {
		t.Fatal("reopened store is not a durable sharded ingest")
	}
	if sv.Shards() != 3 {
		t.Fatalf("reopened with %d shards, want recorded 3", sv.Shards())
	}
	if st := sv.Stats(); st.Edges != 17 {
		t.Fatalf("recovered %d edges, want 17", st.Edges)
	}

	h := handler(ing)
	code, body := get(t, h, "/healthz")
	if code != 200 || body["ok"] != true || body["durable"] != true {
		t.Fatalf("/healthz = %d %v", code, body)
	}
	if int(body["shards"].(float64)) != 3 {
		t.Fatalf("/healthz shards = %v", body["shards"])
	}
	epochs := body["epochs"].([]any)
	durable := body["durable_epochs"].([]any)
	if len(epochs) != 3 || len(durable) != 3 {
		t.Fatalf("/healthz vectors = %v / %v", epochs, durable)
	}
	if body["wal_lag"].(float64) != 0 {
		t.Fatalf("/healthz wal_lag = %v, want 0 after checkpointed close", body["wal_lag"])
	}
	for i := range epochs {
		if epochs[i] != durable[i] {
			t.Fatalf("shard %d not fully durable after close: %v vs %v", i, epochs, durable)
		}
	}

	// Serving works from the recovered store.
	if code, body := get(t, h, "/at?src=v00&dst=v01"); code != 200 || body["stored"] != true {
		t.Fatalf("recovered /at = %d %v", code, body)
	}
	if code, _ := get(t, h, "/bfs?src=v00"); code != 200 {
		t.Fatalf("recovered /bfs = %d", code)
	}
}
