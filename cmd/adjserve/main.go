// Command adjserve maintains an adjacency array over a stream of edge
// triples and answers queries against live snapshots — the paper's
// construction A = Eoutᵀ ⊕.⊗ Ein run as a serving process instead of a
// batch job.
//
// Edges arrive one per line on stdin (or -in file), whitespace-separated:
//
//	src dst [out [in]]         (edge keys auto-assigned in arrival order)
//	key src dst [out [in]]     (with -keyed; keys must arrive ascending)
//
// Omitted weights select the algebra's One (the unweighted convention);
// provided weights are ingested literally, including the algebra's Zero
// (which annihilates: such an edge contributes no adjacency entry).
// Lines starting with '#' and blank lines are skipped.
//
// Ingest is sharded by default: -shards (default GOMAXPROCS) partitions
// the vertex space by source-vertex hash across goroutine-shards, each
// owning its own view (and, when durable, its own WAL/checkpoint
// subdirectory), so appends to different shards never contend on one
// lock. Queries resolve against scatter-gather snapshots pinned at one
// consistent epoch per shard — every response carries that epoch
// vector. -shards 1 keeps the classic single view.
//
// With -serve the process answers HTTP queries from live snapshots
// while ingesting (see internal/serve, the production front door):
//
//	GET /stats               ingest counters (JSON; per-shard breakdown when sharded)
//	GET /healthz             liveness + durability position (fsync epoch, WAL lag)
//	GET /metrics             Prometheus text exposition (latency histograms, epochs, WAL lag, admission)
//	GET /at?src=a&dst=b      one adjacency entry
//	GET /row?src=a           one row of the adjacency array
//	GET /triples?limit=n     adjacency triples, capped (default 10000, clamped to -triples-max)
//	POST /ingest             append a batch of edges ({"edges":[{"src":..,"dst":..},...]})
//	GET /bfs?src=a           breadth-first levels from a   (CSR kernels)
//	GET /sssp?src=a          min.+ shortest-path distances from a
//	GET /widest?src=a        max.min bottleneck widths from a
//	GET /pagerank?damping=&tol=&iters=   damped PageRank of the pattern
//	GET /triangles           triangle count (symmetric patterns)
//	POST /batch              many ops against one pinned snapshot ({"ops":[...]})
//
// Algorithm queries run on the CSR-native kernels over a Graph built
// from the current snapshot and cached per epoch vector, so a burst of
// queries against an unchanged graph pays the id-space embedding once.
//
// Serving is overload-safe: cheap point reads and expensive algorithm
// queries run in separate bounded worker pools (-read-workers,
// -algo-workers) with queue-depth admission control (-read-queue,
// -algo-queue); excess load is shed as 429 + Retry-After instead of
// piling up goroutines. cmd/loadgen drives SLO curves against this
// front door.
//
// With -data-dir the store is durable: on start the view is recovered
// from the newest valid checkpoint plus a WAL replay (the recovered and
// durable epochs are logged), every ingested batch is written ahead to
// the log under the -fsync policy (batch, interval, or off), background
// checkpoints run every -checkpoint-every batches, and shutdown —
// stream end or SIGINT/SIGTERM — flushes partial batches and writes a
// final covering checkpoint before the process exits. A sharded
// durable store keeps one WAL/checkpoint directory per shard plus a
// SHARDS meta file; reopening adopts the recorded shard count.
//
// A storage fault (failed fsync, ENOSPC, I/O error on the WAL) wedges
// the durable store read-only rather than risking silent data loss.
// Without -serve that is fatal; with -serve the process keeps
// answering every read endpoint from the last good snapshot while
// ingest sheds — stdin ingest stops with a logged warning and POST
// /ingest answers 503 + Retry-After. /healthz and the
// adjserve_storage_* metrics report the ok → degraded → read-only
// state machine; recovery is a restart against the repaired disk.
//
// The process exits when the input stream ends (unless -serve keeps it
// answering queries) and shuts down cleanly on SIGINT/SIGTERM.
//
// Usage:
//
//	generate_edges | adjserve -semiring +.* -serve :8080
//	adjserve -in edges.tsv -keyed -semiring max.plus -batch 256
//	adjserve -in edges.tsv -data-dir /var/lib/adjserve -fsync batch -shards 4
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"adjarray/internal/core"
	"adjarray/internal/serve"
	"adjarray/internal/stream"
	"adjarray/internal/value"
	"adjarray/internal/wal"
)

// config carries the parsed flags.
type config struct {
	semiring      string
	in            string
	keyed         bool
	batch         int
	shards        int
	compactEvery  int
	check         bool
	serve         string
	flushEvery    time.Duration
	skip          bool
	dataDir       string
	fsync         string
	fsyncInterval time.Duration
	ckptEvery     int

	// Front-door tuning (see internal/serve.Options).
	readWorkers int
	readQueue   int
	algoWorkers int
	algoQueue   int
	retryAfter  time.Duration
	triplesMax  int
	maxIters    int
	batchMaxOps int
}

// serveOptions maps the flags onto the front-door options.
func (cfg config) serveOptions() serve.Options {
	return serve.Options{
		TriplesMax:  cfg.triplesMax,
		MaxIters:    cfg.maxIters,
		MaxBatchOps: cfg.batchMaxOps,
		ReadWorkers: cfg.readWorkers,
		ReadQueue:   cfg.readQueue,
		AlgoWorkers: cfg.algoWorkers,
		AlgoQueue:   cfg.algoQueue,
		RetryAfter:  cfg.retryAfter,
	}
}

func main() {
	var cfg config
	flag.StringVar(&cfg.semiring, "semiring", "+.*", "operator pair (registry name)")
	flag.StringVar(&cfg.in, "in", "-", "edge stream: file path or - for stdin")
	flag.BoolVar(&cfg.keyed, "keyed", false, "lines carry an explicit leading edge key")
	flag.IntVar(&cfg.batch, "batch", 512, "edges per delta batch")
	flag.IntVar(&cfg.shards, "shards", runtime.GOMAXPROCS(0), "goroutine-shards for ingest (route-by-hash on src); 1 = classic single view")
	flag.IntVar(&cfg.compactEvery, "compact-every", 0, "auto-Compact after this many batches (0 = never)")
	flag.BoolVar(&cfg.check, "check", false, "sample the ⊕-associativity guard on every batch")
	flag.StringVar(&cfg.serve, "serve", "", "HTTP listen address for snapshot queries (e.g. :8080); empty = ingest only")
	flag.DurationVar(&cfg.flushEvery, "flush-every", time.Second, "with -serve, flush partial batches at this interval so slow streams stay visible")
	flag.BoolVar(&cfg.skip, "skip-condition-check", false, "accept pairs that fail the Theorem II.1 conditions")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durability directory: recover on start, WAL every batch, checkpoint on shutdown; empty = in-memory")
	flag.StringVar(&cfg.fsync, "fsync", "batch", "WAL fsync policy: batch (sync every append), interval, or off")
	flag.DurationVar(&cfg.fsyncInterval, "fsync-interval", 100*time.Millisecond, "sync cadence for -fsync interval")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", 256, "background checkpoint after this many batches (0 = only at shutdown)")
	flag.IntVar(&cfg.readWorkers, "read-workers", 0, "concurrent cheap reads (/at, /row, /triples); 0 = default 64")
	flag.IntVar(&cfg.readQueue, "read-queue", 0, "cheap reads that may wait for a worker before shedding 429; 0 = default 256, negative = no queue")
	flag.IntVar(&cfg.algoWorkers, "algo-workers", 0, "concurrent algorithm queries (/bfs, /pagerank, /batch, ...); 0 = GOMAXPROCS")
	flag.IntVar(&cfg.algoQueue, "algo-queue", 0, "algorithm queries that may wait before shedding 429; 0 = 4x workers, negative = no queue")
	flag.DurationVar(&cfg.retryAfter, "retry-after", time.Second, "Retry-After hint on shed (429) responses")
	flag.IntVar(&cfg.triplesMax, "triples-max", 0, "hard clamp on /triples ?limit; 0 = default 100000")
	flag.IntVar(&cfg.maxIters, "max-iters", 0, "server bound on /pagerank ?iters; 0 = default 1000")
	flag.IntVar(&cfg.batchMaxOps, "batch-max-ops", 0, "ops allowed per POST /batch request; 0 = default 256")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "adjserve:", err)
		os.Exit(1)
	}
}

// run owns the whole process lifecycle. Fatal conditions propagate as
// errors back to main — no goroutine calls os.Exit, so deferred cleanup
// (closing the input file, shutting the server down) always runs — and
// SIGINT/SIGTERM cancel the context for a clean exit instead of the
// process parking on a bare select {} forever.
func run(cfg config) error {
	opt := core.IngestOptions{
		Semiring:  cfg.semiring,
		BatchSize: cfg.batch,
		Shards:    cfg.shards,
		Stream: stream.Options{
			CompactEvery:     cfg.compactEvery,
			CheckAssociative: cfg.check,
		},
		SkipConditionCheck: cfg.skip,
	}
	if cfg.dataDir != "" {
		policy, err := wal.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		opt.DataDir = cfg.dataDir
		opt.Durable = stream.DurableOptions[float64]{
			WAL:             wal.Options{Policy: policy, Interval: cfg.fsyncInterval},
			CheckpointEvery: cfg.ckptEvery,
		}
	}
	ing, err := core.NewIngest(opt)
	if err != nil {
		return err
	}
	if d := ing.Durable(); d != nil {
		rec, st := d.Recovery(), d.Durability()
		fmt.Fprintf(os.Stderr,
			"adjserve: recovered epoch %d (durable %d) from %s — checkpoint seq %d, %d batches replayed, %d torn bytes truncated, fsync=%s\n",
			st.Epoch, st.DurableEpoch, cfg.dataDir, rec.CheckpointSeq, rec.Replayed, rec.TornBytes, st.Policy)
	}
	if sv := ing.Sharded(); sv != nil && sv.Durable() {
		recs, durs := sv.Recovery(), sv.Durability()
		replayed, torn := 0, int64(0)
		epochs := make([]uint64, len(durs))
		for i := range recs {
			replayed += recs[i].Replayed
			torn += recs[i].TornBytes
			epochs[i] = durs[i].Epoch
		}
		fmt.Fprintf(os.Stderr,
			"adjserve: recovered %d shards from %s — epoch vector %v, %d batches replayed, %d torn bytes truncated, fsync=%s\n",
			sv.Shards(), cfg.dataDir, epochs, replayed, torn, durs[0].Policy)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	f := newFront(ing, cfg.batch)
	fatal := make(chan error, 2) // server or flusher failure

	// Every exit path — stream end, SIGINT/SIGTERM, fatal server error —
	// flushes buffered edges, writes a final covering checkpoint, and
	// closes the log; a crash between here and exit is then recoverable
	// from the checkpoint alone.
	defer func() {
		if err := f.flush(); err != nil {
			fmt.Fprintln(os.Stderr, "adjserve: final flush:", err)
		}
		durable := ing.Durable() != nil || (ing.Sharded() != nil && ing.Sharded().Durable())
		if err := f.close(); err != nil {
			fmt.Fprintln(os.Stderr, "adjserve: durability shutdown:", err)
		} else if d := ing.Durable(); d != nil {
			fmt.Fprintf(os.Stderr, "adjserve: final checkpoint at epoch %d\n", d.Durability().CheckpointSeq)
		} else if durable {
			fmt.Fprintln(os.Stderr, "adjserve: final per-shard checkpoints written")
		}
	}()

	var srv *http.Server
	if cfg.serve != "" {
		srv = &http.Server{
			Addr:    cfg.serve,
			Handler: serve.New(ing, cfg.serveOptions()),
			// Slow or stalled clients must not pin serving goroutines (or
			// hold snapshot memory) forever.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       60 * time.Second,
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal <- fmt.Errorf("serve: %w", err)
			}
		}()
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutCtx)
		}()
		fmt.Fprintf(os.Stderr, "adjserve: serving snapshot queries on %s\n", cfg.serve)
	}

	// The flusher keeps partial batches visible on slow streams. It is a
	// ticker goroutine with an explicit stop: once the input stream ends
	// (or the process is interrupted) it terminates instead of flushing —
	// and leaking — forever, as the old time.Tick loop did.
	flushStop := make(chan struct{})
	var flushWG sync.WaitGroup
	if srv != nil && cfg.flushEvery > 0 {
		flushWG.Add(1)
		go func() {
			defer flushWG.Done()
			t := time.NewTicker(cfg.flushEvery)
			defer t.Stop()
			for {
				select {
				case <-flushStop:
					return
				case <-ctx.Done():
					return
				case <-t.C:
					if err := f.flush(); err != nil {
						if errors.Is(err, stream.ErrReadOnly) {
							// The store wedged read-only; the server keeps
							// answering reads, so stop flushing instead of
							// killing the process.
							fmt.Fprintln(os.Stderr, "adjserve: storage read-only; periodic flush stopped:", err)
							return
						}
						fatal <- fmt.Errorf("flush: %w", err)
						return
					}
				}
			}
		}()
	}

	src := io.Reader(os.Stdin)
	if cfg.in != "-" {
		file, err := os.Open(cfg.in)
		if err != nil {
			return err
		}
		defer file.Close()
		src = file
	}

	start := time.Now()
	ingested := make(chan error, 1)
	go func() { ingested <- ingest(src, cfg.keyed, f) }()

	readOnly := false
	select {
	case err := <-ingested:
		if err != nil {
			if srv == nil || !errors.Is(err, stream.ErrReadOnly) {
				return err
			}
			// Degraded mode: the durable store wedged read-only
			// mid-stream. Without a server that is fatal; with one, the
			// read endpoints still answer from the last good snapshot, so
			// shed ingest and keep serving until the operator restarts
			// against the repaired disk.
			readOnly = true
			fmt.Fprintln(os.Stderr, "adjserve: storage read-only; stream ingest stopped, still serving reads:", err)
		}
	case err := <-fatal:
		return err
	case <-ctx.Done():
		// Interrupted mid-stream: report what was ingested and exit
		// cleanly (deferred server shutdown and file close still run).
		close(flushStop)
		flushWG.Wait()
		fmt.Fprintln(os.Stderr, "adjserve: interrupted")
		return nil
	}
	close(flushStop)
	flushWG.Wait()

	if readOnly {
		// Skip the final flush and stats — both would just re-report the
		// wedge — and park in the serving loop.
		select {
		case <-ctx.Done():
			return nil
		case err := <-fatal:
			return err
		}
	}

	if err := f.flush(); err != nil {
		return err
	}
	if sv := ing.Sharded(); sv != nil {
		if _, err := sv.Snapshot(); err != nil { // materialize for the final stats
			return err
		}
		st := sv.Stats()
		fmt.Fprintf(os.Stderr,
			"adjserve: ingested %d edges in %v across %d shards — %d adjacency entries (%d pending), epoch vector %v, exact=%v\n",
			f.edges.Load(), time.Since(start).Round(time.Millisecond),
			st.Shards, st.AdjNNZ, st.Pending, st.Epochs, st.Exact)
	} else {
		if _, err := ing.Snapshot(); err != nil { // flush + materialize for the final stats
			return err
		}
		st := ing.View().Stats()
		fmt.Fprintf(os.Stderr,
			"adjserve: ingested %d edges in %v — %d out-vertices, %d in-vertices, %d adjacency entries (%d pending), exact=%v\n",
			f.edges.Load(), time.Since(start).Round(time.Millisecond),
			st.OutVertices, st.InVertices, st.AdjNNZ, st.PendingNNZ, st.Exact)
	}

	if srv != nil {
		fmt.Fprintln(os.Stderr, "adjserve: stream ended; still serving (interrupt to exit)")
		select {
		case <-ctx.Done():
			return nil
		case err := <-fatal:
			return err
		}
	}
	return nil
}

// front is the ingest-side write path.
//
// Single-view mode keeps the historical design: one process-wide mutex
// serializes the core.Ingest accumulator (Add, Flush, and the append
// they trigger all run under it).
//
// Sharded mode is what ROADMAP item 4 asked for: the process-wide
// critical section shrinks to the local batch buffer and the edge
// counter (an atomic). The Append itself — scatter, per-shard key
// assignment, fold, WAL write — runs OUTSIDE that lock against the
// sharded view's per-shard locks, so concurrent producers (and the
// periodic flusher) only contend when they touch the same shard. A
// small ordering mutex serializes buffer swap + append so batches reach
// each shard in arrival order, which keeps explicit -keyed streams
// within the per-shard ascending-key discipline.
type front struct {
	ing  *core.Ingest
	sv   *stream.ShardedView[float64] // nil in single-view mode
	size int

	mu    sync.Mutex // single-view: accumulator guard; sharded: batch-buffer guard only
	amu   sync.Mutex // sharded: swap+append ordering (never held while buffering edges)
	buf   []stream.Edge[float64]
	edges atomic.Int64
}

func newFront(ing *core.Ingest, batch int) *front {
	if batch <= 0 {
		batch = 512
	}
	f := &front{ing: ing, sv: ing.Sharded(), size: batch}
	if f.sv != nil {
		f.buf = make([]stream.Edge[float64], 0, batch)
	}
	return f
}

// add buffers one edge and flushes full batches.
func (f *front) add(e stream.Edge[float64]) error {
	if f.sv == nil {
		f.mu.Lock()
		err := f.ing.Add(e)
		f.mu.Unlock()
		if err != nil {
			return err
		}
		f.edges.Add(1)
		return nil
	}
	f.mu.Lock()
	f.buf = append(f.buf, e)
	full := len(f.buf) >= f.size
	f.mu.Unlock()
	f.edges.Add(1)
	if full {
		return f.flush()
	}
	return nil
}

// flush appends whatever is buffered. In sharded mode the buffer is
// swapped out under the narrow lock and appended outside it.
func (f *front) flush() error {
	if f.sv == nil {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.ing.Flush()
	}
	f.amu.Lock()
	defer f.amu.Unlock()
	f.mu.Lock()
	b := f.buf
	f.buf = make([]stream.Edge[float64], 0, f.size)
	f.mu.Unlock()
	if len(b) == 0 {
		return nil
	}
	return f.sv.Append(b)
}

// close shuts the ingest down (final checkpoint + log close when
// durable). The single-view path serializes against add/flush.
func (f *front) close() error {
	if f.sv == nil {
		f.mu.Lock()
		defer f.mu.Unlock()
	}
	return f.ing.Close()
}

// ingest drains the edge stream into the front, which counts accepted
// edges on its atomic counter.
func ingest(src io.Reader, keyed bool, f *front) error {
	lines := 0
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		lines++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseEdge(line, keyed)
		if err != nil {
			return fmt.Errorf("line %d: %w", lines, err)
		}
		if err := f.add(e); err != nil {
			return fmt.Errorf("line %d: %w", lines, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read: %w", err)
	}
	return nil
}

// parseEdge splits one stream line into an Edge. Weight presence is
// positional: a provided field sets the corresponding Has flag, so an
// explicit weight round-trips even when it equals the algebra's Zero,
// and an omitted one selects the algebra's One.
func parseEdge(line string, keyed bool) (stream.Edge[float64], error) {
	var e stream.Edge[float64]
	f := strings.Fields(line)
	if keyed {
		if len(f) < 1 {
			return e, fmt.Errorf("missing edge key")
		}
		e.Key, f = f[0], f[1:]
	}
	if len(f) < 2 {
		return e, fmt.Errorf("want 'src dst [out [in]]', got %q", line)
	}
	e.Src, e.Dst = f[0], f[1]
	var err error
	if len(f) > 2 {
		if e.Out, err = value.ParseFloat(f[2]); err != nil {
			return e, fmt.Errorf("out weight: %w", err)
		}
		e.HasOut = true
	}
	if len(f) > 3 {
		if e.In, err = value.ParseFloat(f[3]); err != nil {
			return e, fmt.Errorf("in weight: %w", err)
		}
		e.HasIn = true
	}
	return e, nil
}

// handler builds the default production front door over ing — run()
// uses serve.New directly with the flag-derived options; this helper
// keeps the cmd-level integration tests on the default configuration.
func handler(ing *core.Ingest) http.Handler {
	return serve.New(ing, serve.Options{})
}
