// Command adjserve maintains an adjacency array over a stream of edge
// triples and answers queries against live snapshots — the paper's
// construction A = Eoutᵀ ⊕.⊗ Ein run as a serving process instead of a
// batch job.
//
// Edges arrive one per line on stdin (or -in file), whitespace-separated:
//
//	src dst [out [in]]         (edge keys auto-assigned in arrival order)
//	key src dst [out [in]]     (with -keyed; keys must arrive ascending)
//
// Omitted weights select the algebra's One (the unweighted convention);
// provided weights are ingested literally, including the algebra's Zero
// (which annihilates: such an edge contributes no adjacency entry).
// Lines starting with '#' and blank lines are skipped.
//
// With -serve the process answers HTTP queries from live snapshots
// while ingesting:
//
//	GET /stats               ingest counters (JSON)
//	GET /healthz             liveness + durability position (fsync epoch, WAL lag)
//	GET /at?src=a&dst=b      one adjacency entry
//	GET /row?src=a           one row of the adjacency array
//	GET /triples?limit=n     adjacency triples, capped (default 10000)
//	GET /bfs?src=a           breadth-first levels from a   (CSR kernels)
//	GET /sssp?src=a          min.+ shortest-path distances from a
//	GET /widest?src=a        max.min bottleneck widths from a
//	GET /pagerank?damping=&tol=&iters=   damped PageRank of the pattern
//	GET /triangles           triangle count (symmetric patterns)
//
// Algorithm queries run on the CSR-native kernels over a Graph built
// from the current snapshot and cached per epoch, so a burst of queries
// against an unchanged graph pays the id-space embedding once.
//
// With -data-dir the store is durable: on start the view is recovered
// from the newest valid checkpoint plus a WAL replay (the recovered and
// durable epochs are logged), every ingested batch is written ahead to
// the log under the -fsync policy (batch, interval, or off), background
// checkpoints run every -checkpoint-every batches, and shutdown —
// stream end or SIGINT/SIGTERM — flushes partial batches and writes a
// final covering checkpoint before the process exits.
//
// The process exits when the input stream ends (unless -serve keeps it
// answering queries) and shuts down cleanly on SIGINT/SIGTERM.
//
// Usage:
//
//	generate_edges | adjserve -semiring +.* -serve :8080
//	adjserve -in edges.tsv -keyed -semiring max.plus -batch 256
//	adjserve -in edges.tsv -data-dir /var/lib/adjserve -fsync batch
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"adjarray/internal/algo"
	"adjarray/internal/core"
	"adjarray/internal/keys"
	"adjarray/internal/stream"
	"adjarray/internal/value"
	"adjarray/internal/wal"
)

// config carries the parsed flags.
type config struct {
	semiring      string
	in            string
	keyed         bool
	batch         int
	compactEvery  int
	check         bool
	serve         string
	flushEvery    time.Duration
	skip          bool
	dataDir       string
	fsync         string
	fsyncInterval time.Duration
	ckptEvery     int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.semiring, "semiring", "+.*", "operator pair (registry name)")
	flag.StringVar(&cfg.in, "in", "-", "edge stream: file path or - for stdin")
	flag.BoolVar(&cfg.keyed, "keyed", false, "lines carry an explicit leading edge key")
	flag.IntVar(&cfg.batch, "batch", 512, "edges per delta batch")
	flag.IntVar(&cfg.compactEvery, "compact-every", 0, "auto-Compact after this many batches (0 = never)")
	flag.BoolVar(&cfg.check, "check", false, "sample the ⊕-associativity guard on every batch")
	flag.StringVar(&cfg.serve, "serve", "", "HTTP listen address for snapshot queries (e.g. :8080); empty = ingest only")
	flag.DurationVar(&cfg.flushEvery, "flush-every", time.Second, "with -serve, flush partial batches at this interval so slow streams stay visible")
	flag.BoolVar(&cfg.skip, "skip-condition-check", false, "accept pairs that fail the Theorem II.1 conditions")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durability directory: recover on start, WAL every batch, checkpoint on shutdown; empty = in-memory")
	flag.StringVar(&cfg.fsync, "fsync", "batch", "WAL fsync policy: batch (sync every append), interval, or off")
	flag.DurationVar(&cfg.fsyncInterval, "fsync-interval", 100*time.Millisecond, "sync cadence for -fsync interval")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", 256, "background checkpoint after this many batches (0 = only at shutdown)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "adjserve:", err)
		os.Exit(1)
	}
}

// run owns the whole process lifecycle. Fatal conditions propagate as
// errors back to main — no goroutine calls os.Exit, so deferred cleanup
// (closing the input file, shutting the server down) always runs — and
// SIGINT/SIGTERM cancel the context for a clean exit instead of the
// process parking on a bare select {} forever.
func run(cfg config) error {
	opt := core.IngestOptions{
		Semiring:  cfg.semiring,
		BatchSize: cfg.batch,
		Stream: stream.Options{
			CompactEvery:     cfg.compactEvery,
			CheckAssociative: cfg.check,
		},
		SkipConditionCheck: cfg.skip,
	}
	if cfg.dataDir != "" {
		policy, err := wal.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		opt.DataDir = cfg.dataDir
		opt.Durable = stream.DurableOptions[float64]{
			WAL:             wal.Options{Policy: policy, Interval: cfg.fsyncInterval},
			CheckpointEvery: cfg.ckptEvery,
		}
	}
	ing, err := core.NewIngest(opt)
	if err != nil {
		return err
	}
	if d := ing.Durable(); d != nil {
		rec, st := d.Recovery(), d.Durability()
		fmt.Fprintf(os.Stderr,
			"adjserve: recovered epoch %d (durable %d) from %s — checkpoint seq %d, %d batches replayed, %d torn bytes truncated, fsync=%s\n",
			st.Epoch, st.DurableEpoch, cfg.dataDir, rec.CheckpointSeq, rec.Replayed, rec.TornBytes, st.Policy)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The accumulator is not safe for concurrent Add/Flush, so the ingest
	// loop and the periodic flusher share a mutex. Snapshot queries go
	// straight to the View, which has its own locking.
	var mu sync.Mutex
	fatal := make(chan error, 2) // server or flusher failure

	// Every exit path — stream end, SIGINT/SIGTERM, fatal server error —
	// flushes buffered edges, writes a final covering checkpoint, and
	// closes the log; a crash between here and exit is then recoverable
	// from the checkpoint alone.
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		d := ing.Durable()
		if err := ing.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "adjserve: durability shutdown:", err)
		} else if d != nil {
			fmt.Fprintf(os.Stderr, "adjserve: final checkpoint at epoch %d\n", d.Durability().CheckpointSeq)
		}
	}()

	var srv *http.Server
	if cfg.serve != "" {
		srv = &http.Server{
			Addr:    cfg.serve,
			Handler: handler(ing),
			// Slow or stalled clients must not pin serving goroutines (or
			// hold snapshot memory) forever.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       60 * time.Second,
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal <- fmt.Errorf("serve: %w", err)
			}
		}()
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutCtx)
		}()
		fmt.Fprintf(os.Stderr, "adjserve: serving snapshot queries on %s\n", cfg.serve)
	}

	// The flusher keeps partial batches visible on slow streams. It is a
	// ticker goroutine with an explicit stop: once the input stream ends
	// (or the process is interrupted) it terminates instead of flushing —
	// and leaking — forever, as the old time.Tick loop did.
	flushStop := make(chan struct{})
	var flushWG sync.WaitGroup
	if srv != nil && cfg.flushEvery > 0 {
		flushWG.Add(1)
		go func() {
			defer flushWG.Done()
			t := time.NewTicker(cfg.flushEvery)
			defer t.Stop()
			for {
				select {
				case <-flushStop:
					return
				case <-ctx.Done():
					return
				case <-t.C:
					mu.Lock()
					err := ing.Flush()
					mu.Unlock()
					if err != nil {
						fatal <- fmt.Errorf("flush: %w", err)
						return
					}
				}
			}
		}()
	}

	src := io.Reader(os.Stdin)
	if cfg.in != "-" {
		f, err := os.Open(cfg.in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	start := time.Now()
	ingested := make(chan error, 1)
	var edges int
	go func() { ingested <- ingest(src, cfg.keyed, ing, &mu, &edges) }()

	select {
	case err := <-ingested:
		if err != nil {
			return err
		}
	case err := <-fatal:
		return err
	case <-ctx.Done():
		// Interrupted mid-stream: report what was ingested and exit
		// cleanly (deferred server shutdown and file close still run).
		close(flushStop)
		flushWG.Wait()
		fmt.Fprintln(os.Stderr, "adjserve: interrupted")
		return nil
	}
	close(flushStop)
	flushWG.Wait()

	mu.Lock()
	_, err = ing.Snapshot() // flush + materialize for the final stats
	mu.Unlock()
	if err != nil {
		return err
	}
	st := ing.View().Stats()
	fmt.Fprintf(os.Stderr,
		"adjserve: ingested %d edges in %v — %d out-vertices, %d in-vertices, %d adjacency entries (%d pending), exact=%v\n",
		edges, time.Since(start).Round(time.Millisecond),
		st.OutVertices, st.InVertices, st.AdjNNZ, st.PendingNNZ, st.Exact)

	if srv != nil {
		fmt.Fprintln(os.Stderr, "adjserve: stream ended; still serving (interrupt to exit)")
		select {
		case <-ctx.Done():
			return nil
		case err := <-fatal:
			return err
		}
	}
	return nil
}

// ingest drains the edge stream into the accumulator, counting accepted
// edges through *edges (written before the channel send in run's select,
// so the count is safely published).
func ingest(src io.Reader, keyed bool, ing *core.Ingest, mu *sync.Mutex, edges *int) error {
	lines := 0
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		lines++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseEdge(line, keyed)
		if err != nil {
			return fmt.Errorf("line %d: %w", lines, err)
		}
		mu.Lock()
		err = ing.Add(e)
		mu.Unlock()
		if err != nil {
			return fmt.Errorf("line %d: %w", lines, err)
		}
		*edges++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read: %w", err)
	}
	return nil
}

// parseEdge splits one stream line into an Edge. Weight presence is
// positional: a provided field sets the corresponding Has flag, so an
// explicit weight round-trips even when it equals the algebra's Zero,
// and an omitted one selects the algebra's One.
func parseEdge(line string, keyed bool) (stream.Edge[float64], error) {
	var e stream.Edge[float64]
	f := strings.Fields(line)
	if keyed {
		if len(f) < 1 {
			return e, fmt.Errorf("missing edge key")
		}
		e.Key, f = f[0], f[1:]
	}
	if len(f) < 2 {
		return e, fmt.Errorf("want 'src dst [out [in]]', got %q", line)
	}
	e.Src, e.Dst = f[0], f[1]
	var err error
	if len(f) > 2 {
		if e.Out, err = value.ParseFloat(f[2]); err != nil {
			return e, fmt.Errorf("out weight: %w", err)
		}
		e.HasOut = true
	}
	if len(f) > 3 {
		if e.In, err = value.ParseFloat(f[3]); err != nil {
			return e, fmt.Errorf("in weight: %w", err)
		}
		e.HasIn = true
	}
	return e, nil
}

// graphCache memoizes the CSR-native algo.Graph per snapshot epoch:
// algorithm queries between ingest batches reuse one id-space embedding
// (and its lazily built transpose) instead of rebuilding per request.
type graphCache struct {
	mu    sync.Mutex
	epoch int
	g     *algo.Graph
}

func (c *graphCache) get(ing *core.Ingest) (*algo.Graph, stream.Snapshot[float64], error) {
	snap, err := ing.View().Snapshot()
	if err != nil {
		return nil, snap, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.g == nil || c.epoch != snap.Epoch {
		g, err := algo.FromSnapshot(snap)
		if err != nil {
			return nil, snap, err
		}
		c.g, c.epoch = g, snap.Epoch
	}
	return c.g, snap, nil
}

// triplesCap is the default (and maximum-less) /triples row budget; a
// large graph must not OOM the serving process because one client asked
// for everything.
const triplesCap = 10000

// handler builds the snapshot-query mux. Every request takes its own
// snapshot: O(1) unless appends happened since the last read, and never
// blocked by ingest for longer than the pending fold.
func handler(ing *core.Ingest) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	// JSON has no ±Inf/NaN, but the tropical algebras store them as
	// ordinary values (an unweighted max.min edge is width +Inf); render
	// non-finite floats with the library's FormatFloat convention.
	safeFloat := func(v float64) any {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return value.FormatFloat(v)
		}
		return v
	}
	safeFloatMap := func(m map[string]float64) map[string]any {
		out := make(map[string]any, len(m))
		for k, v := range m {
			out[k] = safeFloat(v)
		}
		return out
	}
	snapshot := func(w http.ResponseWriter) (stream.Snapshot[float64], bool) {
		snap, err := ing.View().Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return snap, false
		}
		return snap, true
	}
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ing.View().Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]any{"ok": true, "durable": false}
		if d := ing.Durable(); d != nil {
			st := d.Durability()
			resp["durable"] = true
			resp["epoch"] = st.Epoch
			resp["durable_epoch"] = st.DurableEpoch // last batch on stable storage (fsync or checkpoint)
			resp["wal_lag"] = st.WALLag
			resp["checkpoint_seq"] = st.CheckpointSeq
			resp["fsync_policy"] = st.Policy
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/at", func(w http.ResponseWriter, r *http.Request) {
		src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
		if src == "" || dst == "" {
			http.Error(w, "want ?src=...&dst=...", http.StatusBadRequest)
			return
		}
		snap, ok := snapshot(w)
		if !ok {
			return
		}
		val, stored := snap.Adjacency.At(src, dst)
		writeJSON(w, map[string]any{"src": src, "dst": dst, "value": safeFloat(val), "stored": stored, "epoch": snap.Epoch})
	})
	mux.HandleFunc("/row", func(w http.ResponseWriter, r *http.Request) {
		src := r.URL.Query().Get("src")
		if src == "" {
			http.Error(w, "want ?src=...", http.StatusBadRequest)
			return
		}
		snap, ok := snapshot(w)
		if !ok {
			return
		}
		row := map[string]any{}
		snap.Adjacency.SubRef(keys.Range{Lo: src, Hi: src}, nil).Iterate(func(_, d string, v float64) {
			row[d] = safeFloat(v)
		})
		writeJSON(w, map[string]any{"src": src, "row": row, "epoch": snap.Epoch})
	})
	mux.HandleFunc("/triples", func(w http.ResponseWriter, r *http.Request) {
		limit := triplesCap
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		snap, ok := snapshot(w)
		if !ok {
			return
		}
		total := snap.Adjacency.NNZ()
		// Collect through Iterate so memory is O(limit), never O(nnz):
		// the cap must protect the process, not just the response size.
		prealloc := limit
		if total < prealloc {
			prealloc = total
		}
		rows := make([]map[string]any, 0, prealloc)
		snap.Adjacency.Iterate(func(rk, ck string, v float64) {
			if len(rows) < limit {
				rows = append(rows, map[string]any{"row": rk, "col": ck, "val": safeFloat(v)})
			}
		})
		writeJSON(w, map[string]any{
			"triples": rows, "total": total, "truncated": total > limit,
			"epoch": snap.Epoch, "exact": snap.Exact,
		})
	})

	// Algorithm endpoints: CSR-native kernels over the per-epoch cached
	// Graph. A source that is not a vertex is the client's error (404);
	// an algorithm refusing the instance (asymmetric triangles, no
	// fixpoint) is 422.
	cache := &graphCache{}
	algoQuery := func(w http.ResponseWriter, compute func(g *algo.Graph) (any, error)) {
		g, snap, err := cache.get(ing)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		res, err := compute(g)
		if err != nil {
			status := http.StatusUnprocessableEntity
			if errors.Is(err, algo.ErrNotVertex) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, map[string]any{"result": res, "epoch": snap.Epoch, "exact": snap.Exact})
	}
	sourceQuery := func(run func(g *algo.Graph, src string) (any, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			src := r.URL.Query().Get("src")
			if src == "" {
				http.Error(w, "want ?src=...", http.StatusBadRequest)
				return
			}
			algoQuery(w, func(g *algo.Graph) (any, error) { return run(g, src) })
		}
	}
	mux.HandleFunc("/bfs", sourceQuery(func(g *algo.Graph, src string) (any, error) {
		return g.BFSLevels(src)
	}))
	mux.HandleFunc("/sssp", sourceQuery(func(g *algo.Graph, src string) (any, error) {
		dist, err := g.SSSP(src)
		if err != nil {
			return nil, err
		}
		return safeFloatMap(dist), nil
	}))
	mux.HandleFunc("/widest", sourceQuery(func(g *algo.Graph, src string) (any, error) {
		width, err := g.WidestPath(src)
		if err != nil {
			return nil, err
		}
		return safeFloatMap(width), nil
	}))
	mux.HandleFunc("/triangles", func(w http.ResponseWriter, r *http.Request) {
		algoQuery(w, func(g *algo.Graph) (any, error) { return g.TriangleCount() })
	})
	mux.HandleFunc("/pagerank", func(w http.ResponseWriter, r *http.Request) {
		damping, tol, iters := 0.85, 1e-9, 100
		q := r.URL.Query()
		var err error
		if s := q.Get("damping"); s != "" {
			if damping, err = strconv.ParseFloat(s, 64); err != nil {
				http.Error(w, "bad damping", http.StatusBadRequest)
				return
			}
		}
		if s := q.Get("tol"); s != "" {
			if tol, err = strconv.ParseFloat(s, 64); err != nil {
				http.Error(w, "bad tol", http.StatusBadRequest)
				return
			}
		}
		if s := q.Get("iters"); s != "" {
			if iters, err = strconv.Atoi(s); err != nil || iters <= 0 {
				http.Error(w, "bad iters", http.StatusBadRequest)
				return
			}
		}
		algoQuery(w, func(g *algo.Graph) (any, error) {
			rank, used, err := g.PageRank(damping, tol, iters)
			if err != nil {
				return nil, err
			}
			return map[string]any{"rank": rank, "iterations": used}, nil
		})
	})
	return mux
}
