// Command adjserve maintains an adjacency array over a stream of edge
// triples and answers queries against live snapshots — the paper's
// construction A = Eoutᵀ ⊕.⊗ Ein run as a serving process instead of a
// batch job.
//
// Edges arrive one per line on stdin (or -in file), whitespace-separated:
//
//	src dst [out [in]]         (edge keys auto-assigned in arrival order)
//	key src dst [out [in]]     (with -keyed; keys must arrive ascending)
//
// Omitted weights default to the algebra's One (the unweighted
// convention). Lines starting with '#' and blank lines are skipped.
//
// With -serve the process answers HTTP queries from live snapshots
// while ingesting:
//
//	GET /stats              ingest counters (JSON)
//	GET /at?src=a&dst=b     one adjacency entry
//	GET /row?src=a          one row of the adjacency array
//	GET /triples            the full adjacency as triples (small graphs)
//
// Usage:
//
//	generate_edges | adjserve -semiring +.* -serve :8080
//	adjserve -in edges.tsv -keyed -semiring max.plus -batch 256
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"adjarray/internal/core"
	"adjarray/internal/keys"
	"adjarray/internal/stream"
	"adjarray/internal/value"
)

func main() {
	sr := flag.String("semiring", "+.*", "operator pair (registry name)")
	in := flag.String("in", "-", "edge stream: file path or - for stdin")
	keyed := flag.Bool("keyed", false, "lines carry an explicit leading edge key")
	batch := flag.Int("batch", 512, "edges per delta batch")
	compactEvery := flag.Int("compact-every", 0, "auto-Compact after this many batches (0 = never)")
	check := flag.Bool("check", false, "sample the ⊕-associativity guard on every batch")
	serve := flag.String("serve", "", "HTTP listen address for snapshot queries (e.g. :8080); empty = ingest only")
	flushEvery := flag.Duration("flush-every", time.Second, "with -serve, flush partial batches at this interval so slow streams stay visible")
	skip := flag.Bool("skip-condition-check", false, "accept pairs that fail the Theorem II.1 conditions")
	flag.Parse()

	ing, err := core.NewIngest(core.IngestOptions{
		Semiring:  *sr,
		BatchSize: *batch,
		Stream: stream.Options{
			CompactEvery:     *compactEvery,
			CheckAssociative: *check,
		},
		SkipConditionCheck: *skip,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adjserve:", err)
		os.Exit(1)
	}

	// The accumulator is not safe for concurrent Add/Flush, so the
	// ingest loop and the periodic flusher share a mutex. Snapshot
	// queries go straight to the View, which has its own locking.
	var mu sync.Mutex
	if *serve != "" {
		go func() {
			if err := http.ListenAndServe(*serve, handler(ing)); err != nil {
				fmt.Fprintln(os.Stderr, "adjserve: serve:", err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(os.Stderr, "adjserve: serving snapshot queries on %s\n", *serve)
		if *flushEvery > 0 {
			go func() {
				for range time.Tick(*flushEvery) {
					mu.Lock()
					err := ing.Flush()
					mu.Unlock()
					if err != nil {
						fmt.Fprintln(os.Stderr, "adjserve: flush:", err)
						os.Exit(1)
					}
				}
			}()
		}
	}

	src := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adjserve:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}

	start := time.Now()
	lines, edges := 0, 0
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		lines++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseEdge(line, *keyed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adjserve: line %d: %v\n", lines, err)
			os.Exit(1)
		}
		mu.Lock()
		err = ing.Add(e)
		mu.Unlock()
		if err != nil {
			fmt.Fprintf(os.Stderr, "adjserve: line %d: %v\n", lines, err)
			os.Exit(1)
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "adjserve: read:", err)
		os.Exit(1)
	}
	mu.Lock()
	_, err = ing.Snapshot() // flush + materialize for the final stats
	mu.Unlock()
	if err != nil {
		fmt.Fprintln(os.Stderr, "adjserve:", err)
		os.Exit(1)
	}

	st := ing.View().Stats()
	fmt.Fprintf(os.Stderr,
		"adjserve: ingested %d edges in %v — %d out-vertices, %d in-vertices, %d adjacency entries (%d pending), exact=%v\n",
		edges, time.Since(start).Round(time.Millisecond),
		st.OutVertices, st.InVertices, st.AdjNNZ, st.PendingNNZ, st.Exact)

	if *serve != "" {
		fmt.Fprintln(os.Stderr, "adjserve: stream ended; still serving (interrupt to exit)")
		select {}
	}
}

// parseEdge splits one stream line into an Edge.
func parseEdge(line string, keyed bool) (stream.Edge[float64], error) {
	var e stream.Edge[float64]
	f := strings.Fields(line)
	if keyed {
		if len(f) < 1 {
			return e, fmt.Errorf("missing edge key")
		}
		e.Key, f = f[0], f[1:]
	}
	if len(f) < 2 {
		return e, fmt.Errorf("want 'src dst [out [in]]', got %q", line)
	}
	e.Src, e.Dst = f[0], f[1]
	var err error
	if len(f) > 2 {
		if e.Out, err = value.ParseFloat(f[2]); err != nil {
			return e, fmt.Errorf("out weight: %w", err)
		}
	}
	if len(f) > 3 {
		if e.In, err = value.ParseFloat(f[3]); err != nil {
			return e, fmt.Errorf("in weight: %w", err)
		}
	}
	return e, nil
}

// handler builds the snapshot-query mux. Every request takes its own
// snapshot: O(1) unless appends happened since the last read, and never
// blocked by ingest for longer than the pending fold.
func handler(ing *core.Ingest) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ing.View().Stats())
	})
	mux.HandleFunc("/at", func(w http.ResponseWriter, r *http.Request) {
		src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
		if src == "" || dst == "" {
			http.Error(w, "want ?src=...&dst=...", http.StatusBadRequest)
			return
		}
		snap, err := ing.View().Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		val, ok := snap.Adjacency.At(src, dst)
		writeJSON(w, map[string]any{"src": src, "dst": dst, "value": val, "stored": ok, "epoch": snap.Epoch})
	})
	mux.HandleFunc("/row", func(w http.ResponseWriter, r *http.Request) {
		src := r.URL.Query().Get("src")
		if src == "" {
			http.Error(w, "want ?src=...", http.StatusBadRequest)
			return
		}
		snap, err := ing.View().Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		row := map[string]float64{}
		snap.Adjacency.SubRef(keys.Range{Lo: src, Hi: src}, nil).Iterate(func(_, d string, v float64) {
			row[d] = v
		})
		writeJSON(w, map[string]any{"src": src, "row": row, "epoch": snap.Epoch})
	})
	mux.HandleFunc("/triples", func(w http.ResponseWriter, r *http.Request) {
		snap, err := ing.View().Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"triples": snap.Adjacency.Triples(), "epoch": snap.Epoch, "exact": snap.Exact})
	})
	return mux
}
