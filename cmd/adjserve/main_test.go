package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"adjarray/internal/core"
	"adjarray/internal/stream"
)

func TestParseEdge(t *testing.T) {
	cases := []struct {
		line  string
		keyed bool
		want  stream.Edge[float64]
		bad   bool
	}{
		{line: "a b", want: stream.Edge[float64]{Src: "a", Dst: "b"}},
		{line: "a b 2", want: stream.Edge[float64]{Src: "a", Dst: "b", Out: 2, HasOut: true}},
		{line: "a b 2 3", want: stream.Edge[float64]{Src: "a", Dst: "b", Out: 2, HasOut: true, In: 3, HasIn: true}},
		// An explicit zero weight is presence, not absence — the old
		// sentinel could not represent this line.
		{line: "a b 0", want: stream.Edge[float64]{Src: "a", Dst: "b", Out: 0, HasOut: true}},
		{line: "k1 a b 5", keyed: true, want: stream.Edge[float64]{Key: "k1", Src: "a", Dst: "b", Out: 5, HasOut: true}},
		{line: "a", bad: true},
		{line: "a b x", bad: true},
	}
	for _, c := range cases {
		got, err := parseEdge(c.line, c.keyed)
		if c.bad {
			if err == nil {
				t.Errorf("parseEdge(%q) accepted", c.line)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseEdge(%q): %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseEdge(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func newTestIngest(t *testing.T) *core.Ingest {
	t.Helper()
	ing, err := core.NewIngest(core.IngestOptions{Semiring: "+.*", BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ing
}

func get(t *testing.T, h http.Handler, path string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	var body map[string]any
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return rec.Code, body
}

func TestHandlerEndpoints(t *testing.T) {
	ing := newTestIngest(t)
	for _, e := range []stream.Edge[float64]{
		{Src: "a", Dst: "b"}, {Src: "b", Dst: "c"}, {Src: "a", Dst: "c"},
	} {
		if err := ing.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ing.Snapshot(); err != nil {
		t.Fatal(err)
	}
	h := handler(ing)

	if code, body := get(t, h, "/stats"); code != 200 || body["Edges"].(float64) != 3 {
		t.Fatalf("/stats = %d %v", code, body)
	}
	if code, body := get(t, h, "/at?src=a&dst=b"); code != 200 || body["value"].(float64) != 1 || body["stored"] != true {
		t.Fatalf("/at = %d %v", code, body)
	}
	if code, body := get(t, h, "/bfs?src=a"); code != 200 {
		t.Fatalf("/bfs = %d", code)
	} else {
		levels := body["result"].(map[string]any)
		if levels["a"].(float64) != 0 || levels["b"].(float64) != 1 || levels["c"].(float64) != 1 {
			t.Fatalf("/bfs levels = %v", levels)
		}
	}
	if code, body := get(t, h, "/sssp?src=a"); code != 200 {
		t.Fatalf("/sssp = %d", code)
	} else if dist := body["result"].(map[string]any); dist["b"].(float64) != 1 {
		t.Fatalf("/sssp dist = %v", dist)
	}
	if code, body := get(t, h, "/widest?src=a"); code != 200 || body["result"] == nil {
		t.Fatalf("/widest = %d %v", code, body)
	}
	if code, body := get(t, h, "/pagerank?iters=50"); code != 200 {
		t.Fatalf("/pagerank = %d", code)
	} else if pr := body["result"].(map[string]any); pr["iterations"].(float64) < 1 {
		t.Fatalf("/pagerank = %v", pr)
	}
	// The a→b, b→c, a→c pattern is asymmetric: triangle counting refuses.
	if code, _ := get(t, h, "/triangles"); code != http.StatusUnprocessableEntity {
		t.Fatalf("/triangles on asymmetric pattern = %d, want 422", code)
	}
	// Unknown sources are the client's error, missing params a bad request.
	if code, _ := get(t, h, "/bfs?src=zz"); code != http.StatusNotFound {
		t.Fatalf("/bfs unknown source = %d, want 404", code)
	}
	if code, _ := get(t, h, "/bfs"); code != http.StatusBadRequest {
		t.Fatalf("/bfs without src = %d, want 400", code)
	}
	// /triples is capped.
	if code, body := get(t, h, "/triples?limit=2"); code != 200 {
		t.Fatalf("/triples = %d", code)
	} else {
		if n := len(body["triples"].([]any)); n != 2 {
			t.Fatalf("/triples limit=2 returned %d rows", n)
		}
		if body["truncated"] != true || body["total"].(float64) != 3 {
			t.Fatalf("/triples metadata = %v", body)
		}
	}
	if code, _ := get(t, h, "/triples?limit=-1"); code != http.StatusBadRequest {
		t.Fatalf("/triples limit=-1 = %d, want 400", code)
	}
}

// A durable serving process across a restart: the first run ingests and
// closes (final checkpoint), the second recovers, reports its position
// on /healthz, and keeps ingesting with the auto-key sequence intact.
func TestDurableRestartAndHealthz(t *testing.T) {
	dir := t.TempDir()
	open := func() *core.Ingest {
		t.Helper()
		ing, err := core.NewIngest(core.IngestOptions{Semiring: "+.*", BatchSize: 4, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return ing
	}

	ing := open()
	for _, e := range []stream.Edge[float64]{
		{Src: "a", Dst: "b"}, {Src: "b", Dst: "c"}, {Src: "a", Dst: "c"},
	} {
		if err := ing.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	ing = open()
	defer ing.Close()
	d := ing.Durable()
	if d == nil {
		t.Fatal("DataDir set but ingest is not durable")
	}
	if st := d.Durability(); st.Epoch != 1 || st.DurableEpoch != 1 {
		t.Fatalf("recovered position = %+v, want epoch 1 durable 1", st)
	}
	if st := ing.View().Stats(); st.Edges != 3 {
		t.Fatalf("recovered %d edges, want 3", st.Edges)
	}
	// Ingest continues on the recovered store: auto keys must extend the
	// checkpointed sequence, not collide with it.
	if err := ing.Add(stream.Edge[float64]{Src: "c", Dst: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}

	h := handler(ing)
	code, body := get(t, h, "/healthz")
	if code != 200 || body["ok"] != true || body["durable"] != true {
		t.Fatalf("/healthz = %d %v", code, body)
	}
	if body["epoch"].(float64) != 2 || body["durable_epoch"].(float64) != 2 || body["wal_lag"].(float64) != 0 {
		t.Fatalf("/healthz position = %v, want epoch 2, durable 2, lag 0", body)
	}
	if code, body := get(t, h, "/at?src=a&dst=b"); code != 200 || body["stored"] != true {
		t.Fatalf("recovered /at = %d %v", code, body)
	}
}

// In-memory ingests must report healthy-but-not-durable, not error.
func TestHealthzInMemory(t *testing.T) {
	ing := newTestIngest(t)
	code, body := get(t, handler(ing), "/healthz")
	if code != 200 || body["ok"] != true || body["durable"] != false {
		t.Fatalf("/healthz = %d %v", code, body)
	}
}

// Algorithm queries against live snapshots while ingest continues — the
// -race target: readers hit /bfs, /pagerank, /stats and /triples
// concurrently with mu-guarded Add/Flush on the shared accumulator.
func TestBFSDuringConcurrentIngest(t *testing.T) {
	ing := newTestIngest(t)
	// Seed a known reachable pair so /bfs?src=v00 always resolves.
	for _, e := range []stream.Edge[float64]{{Src: "v00", Dst: "v01"}, {Src: "v01", Dst: "v02"}} {
		if err := ing.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ing.Snapshot(); err != nil {
		t.Fatal(err)
	}
	h := handler(ing)

	var mu sync.Mutex
	done := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			paths := []string{"/bfs?src=v00", "/pagerank?iters=10", "/stats", "/triples?limit=5", "/sssp?src=v00"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				path := paths[(i+w)%len(paths)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != http.StatusOK {
					panic(fmt.Sprintf("GET %s = %d: %s", path, rec.Code, rec.Body.String()))
				}
			}
		}(w)
	}

	r := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		e := stream.Edge[float64]{
			Src: fmt.Sprintf("v%02d", r.Intn(24)),
			Dst: fmt.Sprintf("v%02d", r.Intn(24)),
		}
		mu.Lock()
		err := ing.Add(e)
		mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			mu.Lock()
			err := ing.Flush()
			mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	readers.Wait()

	mu.Lock()
	_, err := ing.Snapshot()
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, h, "/bfs?src=v00")
	if code != 200 {
		t.Fatalf("final /bfs = %d", code)
	}
	levels := body["result"].(map[string]any)
	if levels["v00"].(float64) != 0 || levels["v01"] == nil || levels["v02"] == nil {
		t.Fatalf("final /bfs levels = %v", levels)
	}
	if st := ing.View().Stats(); st.Edges != 402 {
		t.Fatalf("ingested %d edges, want 402", st.Edges)
	}
}
