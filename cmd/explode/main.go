// Command explode converts a dense TSV table (spreadsheet/database
// dump) into the sparse incidence-array triples of Figure 1: every
// distinct (field, value) pair becomes a column "field|value" holding 1.
// The output feeds directly into adjbuild.
//
// Usage:
//
//	explode -in table.tsv -o triples.tsv
//	explode -in table.tsv -sep : -multisep , -o -
//
// Input format: first line "<rowKeyHeader>\tField1\tField2…", then one
// line per record; empty cells are absent, ';' separates multi-values.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adjarray/internal/assoc"
	"adjarray/internal/render"
	"adjarray/internal/value"
)

func main() {
	in := flag.String("in", "", "input dense TSV table (required; '-' = stdin)")
	out := flag.String("o", "-", "output TSV triples ('-' = stdout)")
	sep := flag.String("sep", "|", "field/value separator in exploded column keys")
	multi := flag.String("multisep", ";", "multi-value separator within cells")
	grid := flag.Bool("grid", false, "print the exploded array as a grid instead of triples")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "explode: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	td, err := render.ReadTable(r)
	if err != nil {
		fatal(err)
	}
	e, err := assoc.Explode(assoc.Table{
		Rows: td.Rows, Fields: td.Fields, Cells: td.Cells,
	}, assoc.ExplodeOptions{Sep: *sep, MultiSep: *multi})
	if err != nil {
		fatal(err)
	}
	rows, cols := e.Shape()
	fmt.Fprintf(os.Stderr, "explode: %d records × %d fields -> %d×%d incidence array, %d entries\n",
		len(td.Rows), len(td.Fields), rows, cols, e.NNZ())

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *grid {
		fmt.Fprint(w, assoc.Format(e, value.FormatFloat))
		return
	}
	var recs []render.TripleRecord
	e.Iterate(func(row, col string, v float64) {
		recs = append(recs, render.TripleRecord{Row: row, Col: col, Val: value.FormatFloat(v)})
	})
	if err := render.WriteTriples(w, recs); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explode:", err)
	os.Exit(1)
}
