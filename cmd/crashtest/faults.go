package main

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	"adjarray/internal/core"
	"adjarray/internal/iofault"
	"adjarray/internal/serve"
	"adjarray/internal/stream"
	"adjarray/internal/wal"
)

// ---------------------------------------------------------------------
// Randomized disk-fault schedules
// ---------------------------------------------------------------------

// runFaultSchedules drives the -faults suite: `schedules` rounds of
// live ingest through a seed-driven iofault injector, all against ONE
// store directory so later rounds recover state shaped by earlier
// wedges. Each round opens the store clean (recovery itself is not
// attacked), arms a random schedule — EIO, ENOSPC, short writes, torn
// writes at a random rate with a small budget — and appends workload
// batches until the quota or a wedge.
//
// The contract under test, per round:
//
//   - An append refused by a storage fault fails typed
//     (stream.ErrReadOnly); anything else is a harness failure.
//   - After a wedge the durable boundary froze exactly at the last
//     acknowledged batch — no failed fsync advanced it — and the store
//     reports read-only.
//   - The wedge is sticky: the fault condition clearing (Clear) does
//     not un-wedge, and further appends still refuse.
//   - A clean reopen recovers bit-identically to the dense oracle over
//     at least every acknowledged batch.
func runFaultSchedules(root string, seed int64, schedules int, logf func(string, ...any)) error {
	ops, err := mustOps()
	if err != nil {
		return err
	}
	dir := filepath.Join(root, "faultstore")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	epoch := uint64(0)
	wedges, degradedOnly, faults := 0, 0, 0
	for i := 0; i < schedules; i++ {
		schedSeed := seed ^ int64(i+1)*0x9e3779b9
		rng := rand.New(rand.NewSource(schedSeed))
		inj := iofault.New()
		d, err := stream.Open(dir, ops, stream.DurableOptions[float64]{
			FS: iofault.Wrap(iofault.OS, inj),
			WAL: wal.Options{
				Policy:       wal.SyncEveryAppend,
				SegmentBytes: 16 << 10, // force rotation inside the schedule
			},
			CheckpointEvery: 5,
		})
		if err != nil {
			return fmt.Errorf("schedule %d: clean open failed: %w", i, err)
		}
		// Armed only after open: the schedule attacks live ingest;
		// recovery is verified separately below, on a healthy disk.
		budget := 1 + rng.Intn(5)
		rate := 0.02 + rng.Float64()*0.08
		inj.ArmRandom(schedSeed, rate, budget,
			iofault.EIO, iofault.ENOSPC, iofault.ShortWrite, iofault.TornWrite)

		lastAcked := epoch
		quota := epoch + uint64(20+rng.Intn(30))
		var wedgeErr error
		for b := epoch + 1; b <= quota; b++ {
			if err := d.Append(batchEdges(seed, b, keyBase(seed, b))); err != nil {
				if !errors.Is(err, stream.ErrReadOnly) {
					d.Abort()
					return fmt.Errorf("schedule %d batch %d: append failed untyped: %v", i, b, err)
				}
				wedgeErr = err
				break
			}
			lastAcked = b
		}
		faults += inj.Injected()

		if wedgeErr != nil {
			wedges++
			if st := d.Durability(); st.DurableEpoch != lastAcked {
				d.Abort()
				return fmt.Errorf("schedule %d: durable epoch %d after wedge, want last acked %d (a failed fsync advanced the durable boundary)",
					i, st.DurableEpoch, lastAcked)
			}
			if h := d.StorageHealth(); h.State != stream.StorageReadOnly {
				d.Abort()
				return fmt.Errorf("schedule %d: storage state %v after wedge, want read-only", i, h.State)
			}
			// The disk "recovers" — and the wedge must not.
			inj.Clear()
			if err := d.Append(batchEdges(seed, quota+1, keyBase(seed, quota+1))); !errors.Is(err, stream.ErrReadOnly) {
				d.Abort()
				return fmt.Errorf("schedule %d: post-wedge append on a healthy disk returned %v, want ErrReadOnly", i, err)
			}
			d.Abort()
		} else {
			if h := d.StorageHealth(); h.State == stream.StorageDegraded {
				degradedOnly++ // a checkpoint fault degraded without wedging
			}
			inj.Clear()
			// Half the schedules exit gracefully, half crash-exit; the
			// clean reopen below must cope with both.
			if rng.Intn(2) == 0 {
				if err := d.Close(); err != nil {
					return fmt.Errorf("schedule %d: close on a healthy disk: %v", i, err)
				}
			} else {
				d.Abort()
			}
		}

		next, err := verifyRecovered(dir, seed, lastAcked)
		if err != nil {
			return fmt.Errorf("schedule %d (%d faults injected, wedged=%v): %w",
				i, inj.Injected(), wedgeErr != nil, err)
		}
		epoch = next
	}
	if wedges == 0 {
		return fmt.Errorf("no schedule wedged the store in %d rounds; raise the rate or budget", schedules)
	}
	logf("fault schedules done: %d rounds, %d faults injected, %d wedges, %d degraded-only, final epoch %d",
		schedules, faults, wedges, degradedOnly, epoch)
	return nil
}

// ---------------------------------------------------------------------
// Scripted degraded-mode serving
// ---------------------------------------------------------------------

// runDegradedServing is the serving half of the acceptance gate: a
// scripted fault wedges a served store read-only mid-traffic, and the
// front door must answer every read non-5xx throughout — ingest sheds
// 503 + Retry-After, reads keep serving the last good snapshot, and
// /healthz + /metrics report the state machine. Finally the store is
// reopened on the healthy disk and the acknowledged edge must have
// survived.
func runDegradedServing(dir string, seed int64, logf func(string, ...any)) error {
	inj := iofault.New()
	ing, err := core.NewIngest(core.IngestOptions{
		Semiring: "+.*",
		DataDir:  dir,
		Durable: stream.DurableOptions[float64]{
			WAL: wal.Options{Policy: wal.SyncEveryAppend},
			FS:  iofault.Wrap(iofault.OS, inj),
		},
	})
	if err != nil {
		return err
	}
	srv := serve.New(ing, serve.Options{})
	do := func(method, path, body string) (int, http.Header, string) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader(body)))
		return rec.Code, rec.Header(), rec.Body.String()
	}

	// Healthy traffic: one acknowledged batch, read back.
	if code, _, body := do("POST", "/ingest", `{"edges":[{"src":"a","dst":"b"},{"src":"b","dst":"c"}]}`); code != http.StatusOK {
		return fmt.Errorf("healthy ingest: code %d body %s", code, body)
	}
	if code, _, _ := do("GET", "/at?src=a&dst=b", ""); code != http.StatusOK {
		return fmt.Errorf("healthy read: code %d", code)
	}

	// Script the fault: the next WAL fsync fails once.
	inj.Arm(iofault.Rule{Op: iofault.OpSync, Path: "wal-", Kind: iofault.EIO, Count: 1})
	code, hdr, _ := do("POST", "/ingest", `{"edges":[{"src":"c","dst":"d"}]}`)
	if code != http.StatusServiceUnavailable {
		return fmt.Errorf("ingest over failed fsync: code %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		return fmt.Errorf("503 without a Retry-After hint")
	}
	inj.Clear() // disk healthy again; the wedge must hold regardless

	// Every read endpoint answers non-5xx throughout read-only mode.
	for _, path := range []string{
		"/at?src=a&dst=b", "/row?src=a", "/triples", "/bfs?src=a",
		"/sssp?src=a", "/stats", "/healthz", "/metrics",
	} {
		if code, _, body := do("GET", path, ""); code >= 500 {
			return fmt.Errorf("GET %s in read-only mode: code %d body %s", path, code, body)
		}
	}
	if code, _, _ := do("POST", "/ingest", `{"edges":[{"src":"e","dst":"f"}]}`); code != http.StatusServiceUnavailable {
		return fmt.Errorf("ingest after wedge on a healthy disk: code %d, want 503", code)
	}
	if _, _, body := do("GET", "/healthz", ""); !strings.Contains(body, `"storage":"read-only"`) || !strings.Contains(body, `"ok":true`) {
		return fmt.Errorf("/healthz in read-only mode: %s", body)
	}
	if _, _, body := do("GET", "/metrics", ""); !strings.Contains(body, "adjserve_storage_state 2") {
		return fmt.Errorf("/metrics missing adjserve_storage_state 2")
	}

	// Shut down (the close error IS the wedge) and reopen clean: the
	// acknowledged batch survived.
	ing.Close() //adjlint:ignore syncerr the store is wedged by design; recovery is verified below
	ops, err := mustOps()
	if err != nil {
		return err
	}
	d, err := stream.Open(dir, ops, stream.DurableOptions[float64]{})
	if err != nil {
		return fmt.Errorf("reopen after degraded serving: %w", err)
	}
	defer d.Close() //adjlint:ignore syncerr read-only recovery probe; nothing was appended to lose
	snap, err := d.Snapshot()
	if err != nil {
		return err
	}
	if v, ok := snap.Adjacency.At("a", "b"); !ok || v != 1 {
		return fmt.Errorf("acked edge a->b lost across reopen (value %v stored %v)", v, ok)
	}
	logf("degraded serving: reads stayed non-5xx through the wedge; acked data recovered (epoch %d)", d.Durability().Epoch)
	return nil
}
