// Command crashtest is the durability fault-injection harness: it
// SIGKILLs a child ingester at random points mid-stream, recovers the
// store, and proves the recovered adjacency is bit-identical to the
// dense Definition I.3 oracle over every batch the child acknowledged
// as durable before dying.
//
// The harness re-execs its own binary as the child (CRASHTEST_CHILD=1
// in the environment). The child opens the durable store, reads the
// recovered epoch, and continues appending deterministic batches —
// batch b's size, endpoints, and weights derive from (seed, b) alone,
// so the parent can regenerate the exact stream prefix for any
// recovered epoch without coordination. The child prints "acked b"
// after each append; under the per-batch fsync policy that line is a
// durability promise, and the parent holds recovery to it: a recovered
// epoch below the last acked line is data loss and fails the run.
//
// Weights are small integers, so the ⊕-fold is exact in float64
// regardless of association order and the oracle comparison can demand
// bit identity, not tolerance.
//
// With -corrupt the harness also injects damage into a cleanly written
// store — torn final record, bit flip mid-log, bit flip in the newest
// checkpoint — and asserts recovery either repairs to a verified
// prefix, falls back to an older checkpoint and replays forward, or
// refuses with the typed corruption error. Silent wrongness is the one
// outcome that must never happen.
//
// With -faults the harness runs randomized disk-fault schedules in
// process (internal/iofault: EIO, ENOSPC, short writes, torn writes
// against the live WAL and checkpoint paths) and asserts the wedge
// contract — no failed fsync advances the durable boundary, the store
// goes read-only and stays there, and a clean reopen is bit-identical
// to the oracle over everything acknowledged — plus a scripted
// degraded-mode serving scenario where every read endpoint must answer
// non-5xx while ingest sheds 503.
//
// Usage:
//
//	crashtest -iters 50 -seed 7
//	crashtest -iters 200 -dir /mnt/scratch -corrupt=false
//	crashtest -iters 0 -corrupt=false -shards 1 -fault-schedules 50
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
	"adjarray/internal/stream"
	"adjarray/internal/value"
	"adjarray/internal/wal"
)

const childEnv = "CRASHTEST_CHILD"

func main() {
	if os.Getenv(childEnv) == "1" {
		if err := childMain(); err != nil {
			fmt.Fprintln(os.Stderr, "crashtest child:", err)
			os.Exit(1)
		}
		return
	}
	var cfg harnessConfig
	flag.IntVar(&cfg.Iters, "iters", 50, "kill-and-recover iterations")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload seed (batch contents derive from it)")
	flag.StringVar(&cfg.Dir, "dir", "", "scratch directory (default: a fresh temp dir)")
	flag.IntVar(&cfg.BatchesPerRun, "batches-per-run", 48, "batch quota granted to each child run")
	flag.IntVar(&cfg.CheckpointEvery, "checkpoint-every", 7, "child checkpoints every N batches (0 = never)")
	flag.IntVar(&cfg.KillAfterMaxMS, "kill-after-max-ms", 30, "upper bound on the random delay before SIGKILL")
	corrupt := flag.Bool("corrupt", true, "also run the corruption-injection scenarios")
	shards := flag.Int("shards", 3, "also run the sharded kill-and-recover harness with this many shards (<= 1 disables)")
	faults := flag.Bool("faults", true, "run the randomized disk-fault schedule suite and the scripted degraded-serving scenario")
	faultSchedules := flag.Int("fault-schedules", 50, "randomized fault schedules for -faults (0 disables the schedule loop)")
	flag.Parse()

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, "crashtest: "+format+"\n", args...) }
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "crashtest-*")
		if err != nil {
			logf("%v", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	// -iters 0 skips the kill harnesses entirely (e.g. a CI arm that
	// only runs the fault-schedule suite).
	if cfg.Iters > 0 {
		if err := runHarness(cfg, logf); err != nil {
			logf("FAIL: %v", err)
			os.Exit(1)
		}
		if *shards > 1 {
			if err := runShardedHarness(cfg, *shards, logf); err != nil {
				logf("FAIL: %v", err)
				os.Exit(1)
			}
		}
	}
	if *corrupt {
		if *shards > 1 {
			if err := runShardedTornShard(filepath.Join(cfg.Dir, "corrupt"), cfg.Seed, logf); err != nil {
				logf("FAIL: %v", err)
				os.Exit(1)
			}
		}
		if err := runCorruption(filepath.Join(cfg.Dir, "corrupt"), cfg.Seed, logf); err != nil {
			logf("FAIL: %v", err)
			os.Exit(1)
		}
	}
	if *faults {
		if *faultSchedules > 0 {
			if err := runFaultSchedules(filepath.Join(cfg.Dir, "faults"), cfg.Seed, *faultSchedules, logf); err != nil {
				logf("FAIL: %v", err)
				os.Exit(1)
			}
		}
		if err := runDegradedServing(filepath.Join(cfg.Dir, "degraded-serve"), cfg.Seed, logf); err != nil {
			logf("FAIL: %v", err)
			os.Exit(1)
		}
	}
	logf("PASS")
}

// mustOps resolves the harness algebra. The workload is conventional
// arithmetic: + folds multi-edges, small-integer weights keep it exact.
func mustOps() (semiring.Ops[float64], error) {
	e, ok := semiring.Lookup("+.*")
	if !ok {
		return semiring.Ops[float64]{}, fmt.Errorf("+.* pair not registered")
	}
	return e.Ops, nil
}

// ---------------------------------------------------------------------
// Deterministic workload
// ---------------------------------------------------------------------

// batchSize is batch b's edge count, derived from (seed, b) alone.
func batchSize(seed int64, b uint64) int {
	r := rand.New(rand.NewSource(seed ^ int64(b)*1000003))
	return 1 + r.Intn(11)
}

// keyBase is the number of edges in batches [1, b) — the global index
// of batch b's first edge key.
func keyBase(seed int64, b uint64) int {
	n := 0
	for i := uint64(1); i < b; i++ {
		n += batchSize(seed, i)
	}
	return n
}

// batchEdges regenerates batch b: keys continue the global ascending
// sequence, endpoints land in a small vertex space (multi-edges and
// fold pressure), weights are integers in [1, 8].
func batchEdges(seed int64, b uint64, base int) []stream.Edge[float64] {
	r := rand.New(rand.NewSource(seed ^ int64(b)*1000003))
	n := 1 + r.Intn(11)
	edges := make([]stream.Edge[float64], n)
	for i := range edges {
		edges[i] = stream.Weighted(
			fmt.Sprintf("k%09d", base+i),
			fmt.Sprintf("s%02d", r.Intn(24)),
			fmt.Sprintf("t%02d", r.Intn(24)),
			float64(1+r.Intn(8)),
			float64(1+r.Intn(8)),
		)
	}
	return edges
}

// oracle computes the dense Definition I.3 adjacency over batches
// [1, epoch] regenerated from the seed.
func oracle(seed int64, epoch uint64, ops semiring.Ops[float64]) (*assoc.Array[float64], error) {
	var outT, inT []assoc.Triple[float64]
	for b := uint64(1); b <= epoch; b++ {
		for _, e := range batchEdges(seed, b, keyBase(seed, b)) {
			outT = append(outT, assoc.Triple[float64]{Row: e.Key, Col: e.Src, Val: e.Out})
			inT = append(inT, assoc.Triple[float64]{Row: e.Key, Col: e.Dst, Val: e.In})
		}
	}
	eout := assoc.FromTriples(outT, nil)
	ein := assoc.FromTriples(inT, nil)
	return assoc.MulDense(eout.Transpose(), ein, ops)
}

// verifyRecovered opens the store, checks nothing acknowledged durable
// was lost, and holds the recovered adjacency to bit identity against
// the oracle. It returns the recovered epoch.
func verifyRecovered(dir string, seed int64, minEpoch uint64) (uint64, error) {
	ops, err := mustOps()
	if err != nil {
		return 0, err
	}
	d, err := stream.Open(dir, ops, stream.DurableOptions[float64]{})
	if err != nil {
		return 0, fmt.Errorf("recovery failed: %w", err)
	}
	defer d.Close() //adjlint:ignore syncerr read-only recovery probe; nothing was appended to lose
	st := d.Durability()
	if st.Epoch < minEpoch {
		return 0, fmt.Errorf("LOST ACKNOWLEDGED DATA: recovered epoch %d < last acked %d", st.Epoch, minEpoch)
	}
	snap, err := d.Snapshot()
	if err != nil {
		return 0, err
	}
	want, err := oracle(seed, st.Epoch, ops)
	if err != nil {
		return 0, err
	}
	bitEqual := func(a, b float64) bool { return a == b }
	if diff := assoc.Diff(want, snap.Adjacency, bitEqual, value.FormatFloat); diff != "" {
		return 0, fmt.Errorf("recovered adjacency diverges from the dense oracle at epoch %d: %s", st.Epoch, diff)
	}
	return st.Epoch, nil
}

// ---------------------------------------------------------------------
// Child: ingest until killed
// ---------------------------------------------------------------------

// childMain recovers the store and keeps appending workload batches
// until its quota or a SIGKILL. Configuration arrives via environment
// (the parent re-execs this same binary), and every "acked b" line is
// printed only after Append returned under the per-batch fsync policy —
// i.e. after the batch hit stable storage.
func childMain() error {
	dir := os.Getenv("CRASHTEST_DIR")
	if dir == "" {
		return fmt.Errorf("CRASHTEST_DIR not set")
	}
	seed, err := strconv.ParseInt(os.Getenv("CRASHTEST_SEED"), 10, 64)
	if err != nil {
		return fmt.Errorf("CRASHTEST_SEED: %w", err)
	}
	maxB, err := strconv.ParseUint(os.Getenv("CRASHTEST_MAX"), 10, 64)
	if err != nil {
		return fmt.Errorf("CRASHTEST_MAX: %w", err)
	}
	ckptEvery, _ := strconv.Atoi(os.Getenv("CRASHTEST_CKPT"))
	if shards, _ := strconv.Atoi(os.Getenv("CRASHTEST_SHARDS")); shards > 1 {
		return childShardedMain(dir, seed, maxB, shards, ckptEvery)
	}
	ops, err := mustOps()
	if err != nil {
		return err
	}
	d, err := stream.Open(dir, ops, stream.DurableOptions[float64]{
		WAL: wal.Options{
			Policy: wal.SyncEveryAppend,
			// Tiny segments force rotation (and retirement, under the
			// checkpoint cadence) inside the kill window.
			SegmentBytes: 16 << 10,
		},
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		return err
	}
	// Error-path backstop only: the success path returns d.Close() below,
	// and acked batches are already durable under SyncEveryAppend.
	//adjlint:ignore syncerr
	defer d.Close()
	for b := d.Durability().Epoch + 1; b <= maxB; b++ {
		if err := d.Append(batchEdges(seed, b, keyBase(seed, b))); err != nil {
			return fmt.Errorf("batch %d: %w", b, err)
		}
		// Unbuffered on purpose: the ack must be in the pipe before the
		// next append can die.
		fmt.Fprintf(os.Stdout, "acked %d\n", b)
	}
	return d.Close()
}

// ---------------------------------------------------------------------
// Parent: kill, recover, verify, repeat
// ---------------------------------------------------------------------

type harnessConfig struct {
	Iters           int
	Seed            int64
	Dir             string
	BatchesPerRun   int
	CheckpointEvery int
	KillAfterMaxMS  int
}

// runHarness drives the kill-and-recover loop over one store directory:
// each iteration grants the child a fresh batch quota on top of the
// recovered epoch, kills it after a random delay, and verifies the
// recovered state — so later iterations recover stores shaped by many
// earlier crashes (checkpoints mid-history, retired segments, torn
// tails already repaired once).
func runHarness(cfg harnessConfig, logf func(string, ...any)) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	dir := filepath.Join(cfg.Dir, "store")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	epoch := uint64(0)
	killed := 0
	for it := 0; it < cfg.Iters; it++ {
		quota := epoch + uint64(cfg.BatchesPerRun)
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			childEnv+"=1",
			"CRASHTEST_DIR="+dir,
			"CRASHTEST_SEED="+strconv.FormatInt(cfg.Seed, 10),
			"CRASHTEST_MAX="+strconv.FormatUint(quota, 10),
			"CRASHTEST_CKPT="+strconv.Itoa(cfg.CheckpointEvery),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		var acked atomic.Uint64
		done := make(chan struct{})
		go func() {
			defer close(done)
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				var b uint64
				if _, err := fmt.Sscanf(sc.Text(), "acked %d", &b); err == nil {
					acked.Store(b)
				}
			}
		}()
		// A delay of up to KillAfterMaxMS lands the SIGKILL anywhere from
		// before the first append to mid-checkpoint to after quota
		// exhaustion — all of which recovery must survive.
		time.Sleep(time.Duration(rng.Intn(cfg.KillAfterMaxMS*1000+1)) * time.Microsecond)
		_ = cmd.Process.Kill()
		werr := cmd.Wait()
		<-done
		next, err := verifyRecovered(dir, cfg.Seed, acked.Load())
		if err != nil {
			return fmt.Errorf("iteration %d (acked %d): %w", it, acked.Load(), err)
		}
		if werr != nil {
			// A clean wait means the child finished its quota before the
			// kill landed; only an actual mid-run kill counts.
			killed++
		}
		logf("iter %d: acked %d, recovered epoch %d", it, acked.Load(), next)
		epoch = next
	}
	if killed == 0 {
		return fmt.Errorf("no iteration actually killed the child mid-run; increase -batches-per-run or lower -kill-after-max-ms")
	}
	logf("done: %d iterations (%d mid-run kills), final epoch %d", cfg.Iters, killed, epoch)
	return nil
}

// ---------------------------------------------------------------------
// Corruption injection
// ---------------------------------------------------------------------

// buildCleanStore writes `batches` workload batches with the given
// checkpoint cadence and closes cleanly (no final checkpoint, so a WAL
// tail always remains to corrupt).
func buildCleanStore(dir string, seed int64, batches uint64, ckptEvery int) error {
	ops, err := mustOps()
	if err != nil {
		return err
	}
	d, err := stream.Open(dir, ops, stream.DurableOptions[float64]{})
	if err != nil {
		return err
	}
	for b := uint64(1); b <= batches; b++ {
		if err := d.Append(batchEdges(seed, b, keyBase(seed, b))); err != nil {
			d.Abort()
			return err
		}
		if ckptEvery > 0 && b%uint64(ckptEvery) == 0 {
			if err := d.Checkpoint(); err != nil {
				d.Abort()
				return err
			}
		}
	}
	return d.Close()
}

// lastSegment returns the path of the newest WAL segment in dir.
func lastSegment(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(matches) == 0 {
		return "", fmt.Errorf("no WAL segments in %s (%v)", dir, err)
	}
	last := matches[0]
	for _, m := range matches[1:] {
		if m > last {
			last = m
		}
	}
	return last, nil
}

// flipByte XORs one byte of the file at off (negative: from the end).
func flipByte(path string, off int64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 {
		off += int64(len(buf))
	}
	if off < 0 || off >= int64(len(buf)) {
		return fmt.Errorf("flip offset %d out of range for %s (%d bytes)", off, path, len(buf))
	}
	buf[off] ^= 0x40
	return os.WriteFile(path, buf, 0o666)
}

// runCorruption runs the scripted damage scenarios, each in a fresh
// store under root.
func runCorruption(root string, seed int64, logf func(string, ...any)) error {
	const batches = 12
	ops, err := mustOps()
	if err != nil {
		return err
	}

	// Scenario 1: torn final record. Recovery truncates the tail and
	// serves the longest verified prefix — epoch 11, bit-identical.
	dir := filepath.Join(root, "torn-tail")
	if err := buildCleanStore(dir, seed, batches, 0); err != nil {
		return err
	}
	seg, err := lastSegment(dir)
	if err != nil {
		return err
	}
	fi, err := os.Stat(seg)
	if err != nil {
		return err
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		return err
	}
	epoch, err := verifyRecovered(dir, seed, batches-1)
	if err != nil {
		return fmt.Errorf("torn tail: %w", err)
	}
	if epoch != batches-1 {
		return fmt.Errorf("torn tail: recovered epoch %d, want %d", epoch, batches-1)
	}
	logf("corruption: torn tail repaired to epoch %d", epoch)

	// Scenario 2: bit flip mid-log (no checkpoint covers it). Recovery
	// must refuse with the typed corruption error — serving a prefix
	// would silently drop acknowledged batches below intact records.
	dir = filepath.Join(root, "midlog-flip")
	if err := buildCleanStore(dir, seed, batches, 0); err != nil {
		return err
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		return fmt.Errorf("no segments to corrupt")
	}
	fi, err = os.Stat(segs[0])
	if err != nil {
		return err
	}
	if err := flipByte(segs[0], fi.Size()/2); err != nil {
		return err
	}
	if _, err := stream.Open(dir, ops, stream.DurableOptions[float64]{}); !errors.Is(err, wal.ErrCorrupt) {
		return fmt.Errorf("mid-log flip: Open returned %v, want the typed corruption error", err)
	}
	logf("corruption: mid-log bit flip refused with ErrCorrupt")

	// Scenario 3: stale checkpoint + longer WAL. The newest checkpoint
	// is damaged; recovery must fall back to the older one and replay
	// the full WAL forward — no acknowledged batch lost.
	dir = filepath.Join(root, "stale-ckpt")
	if err := buildCleanStore(dir, seed, batches, 4); err != nil {
		return err
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil || len(ckpts) < 2 {
		return fmt.Errorf("want >= 2 checkpoints to injure, got %v", ckpts)
	}
	newest := ckpts[0]
	for _, c := range ckpts[1:] {
		if c > newest {
			newest = c
		}
	}
	if err := flipByte(newest, -3); err != nil {
		return err
	}
	epoch, err = verifyRecovered(dir, seed, batches)
	if err != nil {
		return fmt.Errorf("stale checkpoint: %w", err)
	}
	logf("corruption: damaged newest checkpoint; fell back and replayed to epoch %d", epoch)
	return nil
}
