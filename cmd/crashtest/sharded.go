package main

// Sharded fault injection: the same kill-and-recover discipline applied
// to the goroutine-sharded durable store, where one ingest scatters
// across N per-shard WAL/checkpoint directories. Two hazards are
// specific to sharding and gated here:
//
//   - A SIGKILL can land mid-scatter: the dying Append had written its
//     sub-batch to shard 0's WAL but not yet to shard 2's, so the
//     recovered per-shard epochs disagree about the final global batch.
//     Recovery must serve exactly the union of per-shard prefixes —
//     bit-identical to the dense oracle over those edges — and the next
//     run must repair the partial batch (re-append only the missing
//     sub-batches) before continuing the stream.
//
//   - Damage can hit ONE shard directory while its siblings stay
//     intact: the torn shard repairs to its own verified prefix, the
//     gathered adjacency reflects the mixed epoch vector exactly, and a
//     catch-up pass restores the lost sub-batches from the deterministic
//     stream (per-shard keys keep ascending, so the repair is an
//     ordinary append).
//
// The workload is the harness's deterministic one; routing is
// regenerated through the recovered view's own ShardFor, so the parent
// reconstructs every shard's sub-batch sequence from (seed, batch)
// alone.

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"adjarray/internal/assoc"
	"adjarray/internal/stream"
	"adjarray/internal/value"
	"adjarray/internal/wal"
)

// scatterBatch regenerates global batch b and groups it by the view's
// shard routing.
func scatterBatch(sv *stream.ShardedView[float64], seed int64, b uint64) [][]stream.Edge[float64] {
	bySh := make([][]stream.Edge[float64], sv.Shards())
	for _, e := range batchEdges(seed, b, keyBase(seed, b)) {
		s := sv.ShardFor(e.Src)
		bySh[s] = append(bySh[s], e)
	}
	return bySh
}

func anyPositive(xs []int) bool {
	for _, x := range xs {
		if x > 0 {
			return true
		}
	}
	return false
}

// walkCap bounds the batch walk during epoch reconstruction; reaching
// it means the recovered epochs cannot be explained by the workload.
const walkCap = 1 << 20

// shardedCatchUp reconciles a recovered sharded store with the
// deterministic stream: walking global batches in order, each shard
// consumes its recovered epoch's worth of non-empty sub-batches; any
// sub-batch a shard is missing (a mid-scatter kill's unreached shards,
// or a torn shard tail) is re-appended in batch order — per shard the
// missing sub-batches are always the newest, so explicit keys keep
// ascending. Returns the next unwritten global batch.
func shardedCatchUp(sv *stream.ShardedView[float64], seed int64) (uint64, error) {
	remaining := append([]int{}, sv.Stats().Epochs...)
	b := uint64(0)
	for anyPositive(remaining) {
		b++
		if b > walkCap {
			return 0, fmt.Errorf("recovered shard epochs %v unexplained after %d batches", sv.Stats().Epochs, walkCap)
		}
		var missing []stream.Edge[float64]
		for s, sub := range scatterBatch(sv, seed, b) {
			if len(sub) == 0 {
				continue
			}
			if remaining[s] > 0 {
				remaining[s]--
			} else {
				missing = append(missing, sub...)
			}
		}
		if len(missing) > 0 {
			if err := sv.Append(missing); err != nil {
				return 0, fmt.Errorf("repair batch %d: %w", b, err)
			}
		}
	}
	return b + 1, nil
}

// verifyShardedRecovered reopens the sharded store, reconstructs which
// edges each shard recovered (its epoch counts non-empty sub-batches,
// consumed in batch order), and holds the gathered adjacency to bit
// identity against the dense oracle over exactly that edge union. It
// returns the per-shard epoch vector and the count of global batches
// fully covered by every shard; covered < minEpoch is acknowledged data
// loss.
func verifyShardedRecovered(dir string, seed int64, shards int, minEpoch uint64) ([]int, uint64, error) {
	ops, err := mustOps()
	if err != nil {
		return nil, 0, err
	}
	sv, err := stream.OpenSharded(dir, ops, stream.ShardedOptions{Shards: shards}, stream.DurableOptions[float64]{})
	if err != nil {
		return nil, 0, fmt.Errorf("sharded recovery failed: %w", err)
	}
	defer sv.Close() //adjlint:ignore syncerr read-only recovery probe; nothing was appended to lose
	epochs := append([]int{}, sv.Stats().Epochs...)
	remaining := append([]int{}, epochs...)

	var outT, inT []assoc.Triple[float64]
	covered, full := uint64(0), true
	for b := uint64(1); anyPositive(remaining); b++ {
		if b > walkCap {
			return nil, 0, fmt.Errorf("recovered shard epochs %v unexplained after %d batches", epochs, walkCap)
		}
		batchFull := true
		for s, sub := range scatterBatch(sv, seed, b) {
			if len(sub) == 0 {
				continue
			}
			if remaining[s] == 0 {
				batchFull = false
				continue
			}
			remaining[s]--
			for _, e := range sub {
				outT = append(outT, assoc.Triple[float64]{Row: e.Key, Col: e.Src, Val: e.Out})
				inT = append(inT, assoc.Triple[float64]{Row: e.Key, Col: e.Dst, Val: e.In})
			}
		}
		if full && batchFull {
			covered = b
		} else {
			full = false
		}
	}
	if covered < minEpoch {
		return nil, 0, fmt.Errorf("LOST ACKNOWLEDGED DATA: covered %d global batches < last acked %d (epoch vector %v)",
			covered, minEpoch, epochs)
	}

	eout := assoc.FromTriples(outT, nil)
	ein := assoc.FromTriples(inT, nil)
	want, err := assoc.MulDense(eout.Transpose(), ein, ops)
	if err != nil {
		return nil, 0, err
	}
	snap, err := sv.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	got, err := snap.Adjacency()
	if err != nil {
		return nil, 0, err
	}
	bitEqual := func(a, b float64) bool { return a == b }
	if diff := assoc.Diff(want, got, bitEqual, value.FormatFloat); diff != "" {
		return nil, 0, fmt.Errorf("gathered adjacency diverges from the dense oracle (epoch vector %v): %s", epochs, diff)
	}
	return epochs, covered, nil
}

// childShardedMain is the sharded child: recover, repair any partial
// scatter, then keep appending global batches until quota or SIGKILL.
// Every "acked b" line is printed only after the full scatter returned
// under per-shard SyncEveryAppend — all of batch b's sub-batches hit
// their shards' stable storage.
func childShardedMain(dir string, seed int64, maxB uint64, shards, ckptEvery int) error {
	ops, err := mustOps()
	if err != nil {
		return err
	}
	sv, err := stream.OpenSharded(dir, ops, stream.ShardedOptions{Shards: shards}, stream.DurableOptions[float64]{
		WAL: wal.Options{
			Policy:       wal.SyncEveryAppend,
			SegmentBytes: 16 << 10,
		},
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		return err
	}
	// Error-path backstop only: the success path returns sv.Close()
	// below, and acked batches are already durable under SyncEveryAppend.
	//adjlint:ignore syncerr
	defer sv.Close()
	next, err := shardedCatchUp(sv, seed)
	if err != nil {
		return err
	}
	for b := next; b <= maxB; b++ {
		if err := sv.Append(batchEdges(seed, b, keyBase(seed, b))); err != nil {
			return fmt.Errorf("batch %d: %w", b, err)
		}
		fmt.Fprintf(os.Stdout, "acked %d\n", b)
	}
	return sv.Close()
}

// runShardedHarness is runHarness over the sharded store: random
// SIGKILLs against the scattering child, recovery verified against the
// union-of-prefixes oracle each iteration.
func runShardedHarness(cfg harnessConfig, shards int, logf func(string, ...any)) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	dir := filepath.Join(cfg.Dir, "sharded-store")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	epoch := uint64(0)
	killed := 0
	for it := 0; it < cfg.Iters; it++ {
		quota := epoch + uint64(cfg.BatchesPerRun)
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			childEnv+"=1",
			"CRASHTEST_DIR="+dir,
			"CRASHTEST_SEED="+strconv.FormatInt(cfg.Seed, 10),
			"CRASHTEST_MAX="+strconv.FormatUint(quota, 10),
			"CRASHTEST_CKPT="+strconv.Itoa(cfg.CheckpointEvery),
			"CRASHTEST_SHARDS="+strconv.Itoa(shards),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		var acked atomic.Uint64
		done := make(chan struct{})
		go func() {
			defer close(done)
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				var b uint64
				if _, err := fmt.Sscanf(sc.Text(), "acked %d", &b); err == nil {
					acked.Store(b)
				}
			}
		}()
		time.Sleep(time.Duration(rng.Intn(cfg.KillAfterMaxMS*1000+1)) * time.Microsecond)
		_ = cmd.Process.Kill()
		werr := cmd.Wait()
		<-done
		min := epoch
		if a := acked.Load(); a > min {
			min = a
		}
		epochs, covered, err := verifyShardedRecovered(dir, cfg.Seed, shards, min)
		if err != nil {
			return fmt.Errorf("sharded iteration %d (acked %d): %w", it, acked.Load(), err)
		}
		if werr != nil {
			killed++
		}
		logf("sharded iter %d: acked %d, covered %d, epoch vector %v", it, acked.Load(), covered, epochs)
		epoch = covered
	}
	if killed == 0 {
		return fmt.Errorf("no sharded iteration actually killed the child mid-run; increase -batches-per-run or lower -kill-after-max-ms")
	}
	logf("sharded done: %d iterations (%d mid-run kills), covered %d global batches", cfg.Iters, killed, epoch)
	return nil
}

// runShardedTornShard is the kill-one-shard-directory scenario: a
// cleanly written 3-shard store has ONE shard's newest WAL segment torn
// (the other directories stay intact). Recovery must repair that shard
// to its verified prefix — epoch exactly one below its pre-damage value,
// siblings untouched — and serve the gathered adjacency bit-identical
// to the oracle over the now-uneven prefixes. A catch-up pass then
// restores the lost sub-batch from the deterministic stream and the
// store verifies at full coverage again.
func runShardedTornShard(root string, seed int64, logf func(string, ...any)) error {
	const shards, batches = 3, 14
	ops, err := mustOps()
	if err != nil {
		return err
	}
	dir := filepath.Join(root, "sharded-torn")
	sv, err := stream.OpenSharded(dir, ops, stream.ShardedOptions{Shards: shards}, stream.DurableOptions[float64]{})
	if err != nil {
		return err
	}
	for b := uint64(1); b <= batches; b++ {
		if err := sv.Append(batchEdges(seed, b, keyBase(seed, b))); err != nil {
			sv.Abort()
			return err
		}
	}
	before := append([]int{}, sv.Stats().Epochs...)
	if err := sv.Sync(); err != nil {
		sv.Abort()
		return err
	}
	sv.Abort() // no final checkpoint: every shard keeps a WAL tail to tear

	// Tear the newest segment of shard 1 only.
	victim := 1
	seg, err := lastSegment(filepath.Join(dir, fmt.Sprintf("shard-%03d", victim)))
	if err != nil {
		return err
	}
	fi, err := os.Stat(seg)
	if err != nil {
		return err
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		return err
	}

	epochs, _, err := verifyShardedRecovered(dir, seed, shards, 0)
	if err != nil {
		return fmt.Errorf("torn shard: %w", err)
	}
	for s := range epochs {
		want := before[s]
		if s == victim {
			want--
		}
		if epochs[s] != want {
			return fmt.Errorf("torn shard: epoch vector %v after damage, want %v with shard %d one back", epochs, before, victim)
		}
	}
	logf("sharded corruption: shard %d torn to epoch %d, siblings intact %v", victim, epochs[victim], epochs)

	// Catch-up: re-append the lost sub-batch, then the store must verify
	// at full coverage.
	sv, err = stream.OpenSharded(dir, ops, stream.ShardedOptions{Shards: shards}, stream.DurableOptions[float64]{})
	if err != nil {
		return err
	}
	if _, err := shardedCatchUp(sv, seed); err != nil {
		sv.Abort()
		return err
	}
	if err := sv.Sync(); err != nil {
		sv.Abort()
		return err
	}
	if err := sv.Close(); err != nil {
		return err
	}
	epochs, covered, err := verifyShardedRecovered(dir, seed, shards, batches)
	if err != nil {
		return fmt.Errorf("after catch-up: %w", err)
	}
	if covered != batches {
		return fmt.Errorf("after catch-up: covered %d batches, want %d (epoch vector %v)", covered, batches, epochs)
	}
	logf("sharded corruption: shard %d repaired; full coverage at %d batches restored", victim, batches)
	return nil
}
