package main

import (
	"fmt"
	"os"
	"testing"
)

// TestMain doubles as the child entry point: the harness re-execs
// os.Executable(), which under `go test` is the test binary itself, so
// child mode must be intercepted before the test runner parses flags.
func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		if err := childMain(); err != nil {
			fmt.Fprintln(os.Stderr, "crashtest child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestKillAndRecover is the acceptance gate: random SIGKILLs against a
// live ingester, recovery verified bit-identical to the dense oracle
// over everything acknowledged durable. Full mode runs the 50
// iterations the acceptance criteria name; -short keeps CI's race run
// inside its budget.
func TestKillAndRecover(t *testing.T) {
	cfg := harnessConfig{
		Iters:           50,
		Seed:            7,
		Dir:             t.TempDir(),
		BatchesPerRun:   48,
		CheckpointEvery: 7,
		KillAfterMaxMS:  30,
	}
	if testing.Short() {
		cfg.Iters = 10
	}
	if err := runHarness(cfg, t.Logf); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionInjection covers the scripted damage scenarios: torn
// tail repaired to a verified prefix, mid-log bit flip refused with the
// typed error, damaged newest checkpoint recovered through the older
// one plus a full WAL replay.
func TestCorruptionInjection(t *testing.T) {
	if err := runCorruption(t.TempDir(), 7, t.Logf); err != nil {
		t.Fatal(err)
	}
}

// TestShardedKillAndRecover: the same discipline against the 3-shard
// store — a kill can land mid-scatter, so recovery must serve exactly
// the union of per-shard prefixes (bit-identical to the dense oracle
// over those edges) and the next child run must repair the partial
// global batch before continuing.
func TestShardedKillAndRecover(t *testing.T) {
	cfg := harnessConfig{
		Iters:           25,
		Seed:            11,
		Dir:             t.TempDir(),
		BatchesPerRun:   48,
		CheckpointEvery: 7,
		KillAfterMaxMS:  30,
	}
	if testing.Short() {
		cfg.Iters = 8
	}
	if err := runShardedHarness(cfg, 3, t.Logf); err != nil {
		t.Fatal(err)
	}
}

// TestFaultSchedules is the -faults acceptance gate: randomized disk-
// fault schedules against one store, each verified for the wedge
// contract (durable boundary frozen at the last ack, sticky read-only)
// and bit-identical recovery. Full mode runs the 50 schedules the
// acceptance criteria name; -short keeps the race run in budget.
func TestFaultSchedules(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 12
	}
	if err := runFaultSchedules(t.TempDir(), 13, n, t.Logf); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedServing scripts the serving half: a wedged store behind
// the HTTP front door must shed ingest with 503 + Retry-After while
// every read endpoint stays non-5xx, and the acked data must survive a
// clean reopen.
func TestDegradedServing(t *testing.T) {
	if err := runDegradedServing(t.TempDir(), 13, t.Logf); err != nil {
		t.Fatal(err)
	}
}

// TestShardedTornShardDirectory kills exactly one shard directory of a
// cleanly written store (torn WAL tail) and proves the other shards are
// untouched, the gathered adjacency matches the oracle over the uneven
// prefixes, and a catch-up pass restores full coverage.
func TestShardedTornShardDirectory(t *testing.T) {
	if err := runShardedTornShard(t.TempDir(), 11, t.Logf); err != nil {
		t.Fatal(err)
	}
}
