package main

import (
	"fmt"
	"os"
	"testing"
)

// TestMain doubles as the child entry point: the harness re-execs
// os.Executable(), which under `go test` is the test binary itself, so
// child mode must be intercepted before the test runner parses flags.
func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		if err := childMain(); err != nil {
			fmt.Fprintln(os.Stderr, "crashtest child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestKillAndRecover is the acceptance gate: random SIGKILLs against a
// live ingester, recovery verified bit-identical to the dense oracle
// over everything acknowledged durable. Full mode runs the 50
// iterations the acceptance criteria name; -short keeps CI's race run
// inside its budget.
func TestKillAndRecover(t *testing.T) {
	cfg := harnessConfig{
		Iters:           50,
		Seed:            7,
		Dir:             t.TempDir(),
		BatchesPerRun:   48,
		CheckpointEvery: 7,
		KillAfterMaxMS:  30,
	}
	if testing.Short() {
		cfg.Iters = 10
	}
	if err := runHarness(cfg, t.Logf); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionInjection covers the scripted damage scenarios: torn
// tail repaired to a verified prefix, mid-log bit flip refused with the
// typed error, damaged newest checkpoint recovered through the older
// one plus a full WAL replay.
func TestCorruptionInjection(t *testing.T) {
	if err := runCorruption(t.TempDir(), 7, t.Logf); err != nil {
		t.Fatal(err)
	}
}
