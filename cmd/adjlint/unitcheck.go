package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"adjarray/internal/lint"
	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/loader"
)

// vetConfig mirrors the JSON the go command writes to vet.cfg for each
// compilation unit (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one compilation unit described by a vet.cfg file,
// as invoked by `go vet -vettool=adjlint`.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer, asJSON bool) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatal(fmt.Errorf("adjlint: parsing %s: %v", cfgPath, err))
	}

	// The suite uses no cross-package facts, but the protocol requires
	// a facts file per unit (dependencies are invoked VetxOnly purely
	// to produce theirs).
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			fatal(err)
		}
		files = append(files, f)
	}

	// Imports resolve through the export data files the go command
	// already compiled for this unit's dependencies, after mapping
	// source-level import paths through the vendoring/ID map.
	compilerImp := loader.ExportImporter(fset, cfg.PackageFile)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImp.Import(path)
	})
	conf := &types.Config{Importer: imp}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		conf.GoVersion = cfg.GoVersion
	}
	info := loader.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fatal(fmt.Errorf("adjlint: type-checking %s: %v", cfg.ImportPath, err))
	}

	p := &loader.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info}
	findings, err := lint.RunPackage(p, analyzers)
	if err != nil {
		fatal(fmt.Errorf("adjlint: %s: %v", cfg.ImportPath, err))
	}
	writeVetx()
	if len(findings) == 0 {
		return
	}
	if asJSON {
		emitJSON(os.Stdout, cfg.ID, findings)
		return // JSON mode reports via output, not exit status
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Position, f.Message, f.Analyzer)
	}
	os.Exit(2)
}

// emitJSON renders the vet JSON shape: {pkgID: {analyzer: [diag]}}.
func emitJSON(w io.Writer, pkgID string, findings []lint.Finding) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiag{Posn: f.Position, Message: f.Message})
	}
	out := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
