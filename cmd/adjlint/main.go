// Command adjlint runs the repo's custom static-analysis suite
// (internal/lint): the five algebraic/concurrency invariant analyzers
// plus the bundled nilness/shadow/unusedwrite ports.
//
// Two modes, matching x/tools' multichecker+unitchecker pair:
//
// Standalone, over package patterns (uses `go list -export` under the
// hood, so it works offline from the build cache):
//
//	adjlint ./...
//
// As a vet tool, driven per-compilation-unit by the go command:
//
//	go build -o adjlint ./cmd/adjlint
//	go vet -vettool=$PWD/adjlint ./...
//
// The vet protocol (a *.cfg JSON argument per package, -V=full
// fingerprinting, -flags discovery, facts files) is implemented here
// on the standard library alone — the same importer mechanism
// unitchecker uses.
//
// Individual analyzers can be disabled with -<name>=false. Findings
// print as file:line:col: message [analyzer]; the exit status is
// non-zero when any finding is reported, so CI can gate on it.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"adjarray/internal/lint"
	"adjarray/internal/lint/analysis"
	"adjarray/internal/lint/loader"
)

func main() {
	all := lint.Analyzers()
	enabled := map[string]*bool{}
	for _, a := range all {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = flag.Bool(a.Name, true, doc)
	}
	versionFlag := flag.String("V", "", "print version and exit (vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flags as JSON and exit (vet protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON (vet protocol)")
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		printFlags(all)
		return
	}

	var analyzers []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0], analyzers, *jsonFlag)
		return
	}
	standalone(args, analyzers)
}

// standalone loads package patterns through the go command and runs
// the suite over every matched package.
func standalone(patterns []string, analyzers []*analysis.Analyzer) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	findings := 0
	for _, p := range pkgs {
		fs, err := lint.RunPackage(p, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adjlint: %s: %v\n", p.Path, err)
			os.Exit(1)
		}
		for _, f := range fs {
			fmt.Printf("%s: %s [%s]\n", f.Position, f.Message, f.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "adjlint: %d finding(s)\n", findings)
		os.Exit(2)
	}
}

// printVersion implements -V=full: the go command fingerprints vet
// tools by this line to key its action cache.
func printVersion() {
	progname, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// printFlags implements -flags: the go command asks a vet tool which
// flags it supports before passing any through.
func printFlags(all []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range all {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	out = append(out, jsonFlag{Name: "json", Bool: true, Usage: "emit JSON output"})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}
